#include "obs/telemetry.hpp"

#include "obs/json.hpp"

namespace ezrt::obs {

namespace {

template <typename Map, typename Make>
auto& find_or_register(std::mutex& mu, Map& map, const std::string& name,
                       Make make) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(name, make()).first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(const std::string& name) {
  return find_or_register(mu_, counters_, name,
                          [] { return std::make_unique<Counter>(); });
}

Gauge& Registry::gauge(const std::string& name) {
  return find_or_register(mu_, gauges_, name,
                          [] { return std::make_unique<Gauge>(); });
}

Histogram& Registry::histogram(const std::string& name) {
  return find_or_register(mu_, histograms_, name,
                          [] { return std::make_unique<Histogram>(); });
}

void Registry::write_json(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  for (const auto& [name, counter] : counters_) {
    w.member(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    w.member(name, std::int64_t{gauge->value()});
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot s = histogram->snapshot();
    w.key(name).begin_object();
    w.member("count", s.count);
    w.member("sum", s.sum);
    w.member("max", s.max);
    w.member("mean", s.mean());
    w.end_object();
  }
  w.end_object();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace ezrt::obs
