#include "obs/progress.hpp"

#include <cstdio>

namespace ezrt::obs {

ProgressReporter::ProgressReporter(const ProgressSink& sink, std::ostream& os,
                                   std::chrono::milliseconds interval)
    : sink_(&sink),
      os_(&os),
      interval_(interval.count() > 0 ? interval
                                     : std::chrono::milliseconds(1000)),
      start_(std::chrono::steady_clock::now()),
      last_tick_(start_) {
  thread_ = std::thread([this] { loop(); });
}

void ProgressReporter::print_line(double seconds) {
  const std::uint64_t states = sink_->states.load(std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();
  const double tick_s =
      std::chrono::duration<double>(now - last_tick_).count();
  const double rate =
      tick_s > 0.0 ? static_cast<double>(states - last_states_) / tick_s
                   : 0.0;
  last_states_ = states;
  last_tick_ = now;

  char line[256];
  std::snprintf(
      line, sizeof(line),
      "[progress] %7.1fs  states=%llu (%.0f/s)  fired=%llu  pruned=%llu  "
      "depth=%llu  queue=%llu  idle=%llu\n",
      seconds, static_cast<unsigned long long>(states), rate,
      static_cast<unsigned long long>(
          sink_->transitions.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          sink_->pruned.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          sink_->depth.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          sink_->queue.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          sink_->idle_workers.load(std::memory_order_relaxed)));
  (*os_) << line << std::flush;
}

void ProgressReporter::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) {
      return;  // final line printed by stop()
    }
    print_line(std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
                   .count());
  }
}

void ProgressReporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return;
    }
    stopping_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  print_line(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start_)
                 .count());
}

}  // namespace ezrt::obs
