// Named counters, gauges and log2 histograms with near-zero-overhead
// recording.
//
// Recording is one relaxed atomic op; lookup by name happens once at
// registration (hold the returned reference, never re-look-up on a hot
// path). Defining EZRT_NO_TELEMETRY compiles every recording call down to
// nothing — the types keep their layout so linked code needs no changes,
// only the mutation paths vanish. Reads (value()/snapshot()) always work;
// under EZRT_NO_TELEMETRY they simply report zeros.
//
// Instruments registered with a Registry live as long as the registry and
// never move, so references handed out stay valid across later
// registrations (node-based storage).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ezrt::obs {

#if defined(EZRT_NO_TELEMETRY)
inline constexpr bool kTelemetryEnabled = false;
#else
inline constexpr bool kTelemetryEnabled = true;
#endif

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if constexpr (kTelemetryEnabled) {
      v_.fetch_add(n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if constexpr (kTelemetryEnabled) {
      v_.store(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }
  void add(std::int64_t n) noexcept {
    if constexpr (kTelemetryEnabled) {
      v_.fetch_add(n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Power-of-two bucketed histogram of non-negative samples: bucket 0 counts
/// sample == 0, bucket i (i >= 1) counts samples with bit_width == i, i.e.
/// the range [2^(i-1), 2^i). 64 buckets cover the whole uint64 domain.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t sample) noexcept {
    if constexpr (kTelemetryEnabled) {
      buckets_[static_cast<std::size_t>(std::bit_width(sample))].fetch_add(
          1, std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
      sum_.fetch_add(sample, std::memory_order_relaxed);
      // Racy max: good enough for telemetry, monotone under contention.
      std::uint64_t seen = max_.load(std::memory_order_relaxed);
      while (sample > seen && !max_.compare_exchange_weak(
                                  seen, sample, std::memory_order_relaxed)) {
      }
    } else {
      (void)sample;
    }
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  [[nodiscard]] Snapshot snapshot() const noexcept {
    Snapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

class JsonWriter;

/// Name -> instrument registry. Registration takes a mutex; the returned
/// references are stable for the registry's lifetime.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Serializes every instrument as one JSON object in value position:
  /// counters and gauges as numbers, histograms as {count,sum,max,mean}.
  void write_json(JsonWriter& w) const;

  /// Process-wide registry for cross-cutting pipeline counters.
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ezrt::obs
