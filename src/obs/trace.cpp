#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <set>

#include "obs/json.hpp"

namespace ezrt::obs {

std::uint32_t Tracer::tid_locked() {
  const auto id = std::this_thread::get_id();
  auto it = tids_.find(id);
  if (it == tids_.end()) {
    it = tids_.emplace(id, static_cast<std::uint32_t>(tids_.size())).first;
  }
  return it->second;
}

void Tracer::complete(std::string_view name, std::string_view cat,
                      std::uint64_t ts, std::uint64_t dur,
                      std::string args_json, std::uint32_t track) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{std::string(name), std::string(cat),
                          std::move(args_json), 'X', ts, dur, track,
                          tid_locked()});
}

void Tracer::instant(std::string_view name, std::string_view cat,
                     std::string args_json) {
  instant_at(name, cat, now_us(), std::move(args_json), kTrackPipeline);
}

void Tracer::instant_at(std::string_view name, std::string_view cat,
                        std::uint64_t ts, std::string args_json,
                        std::uint32_t track) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{std::string(name), std::string(cat),
                          std::move(args_json), 'i', ts, 0, track,
                          tid_locked()});
}

std::vector<Tracer::Event> Tracer::events() const {
  std::vector<Event> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = events_;
  }
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
  return snapshot;
}

std::string Tracer::to_json() const {
  const std::vector<Event> snapshot = events();

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();

  // Name each track so Perfetto shows meaningful process rows.
  std::set<std::uint32_t> tracks;
  for (const Event& e : snapshot) {
    tracks.insert(e.track);
  }
  for (const std::uint32_t track : tracks) {
    w.begin_object();
    w.member("name", "process_name");
    w.member("ph", "M");
    w.member("pid", track);
    w.member("tid", std::uint32_t{0});
    w.member("ts", std::uint64_t{0});
    w.key("args").begin_object();
    w.member("name", track == kTrackVirtual
                         ? "ezrt dispatcher (virtual time)"
                         : "ezrt pipeline (wall clock)");
    w.end_object();
    w.end_object();
  }

  for (const Event& e : snapshot) {
    w.begin_object();
    w.member("name", e.name);
    w.member("cat", e.cat);
    w.member("ph", std::string_view(&e.ph, 1));
    w.member("ts", e.ts);
    if (e.ph == 'X') {
      w.member("dur", e.dur);
    }
    if (e.ph == 'i') {
      w.member("s", "t");  // thread-scoped instant
    }
    w.member("pid", e.track);
    w.member("tid", e.tid);
    if (!e.args_json.empty()) {
      w.key("args").raw(e.args_json);
    }
    w.end_object();
  }
  w.end_array();
  w.member("displayTimeUnit", "ms");
  w.end_object();
  return w.take();
}

Status write_trace_file(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return make_error(ErrorCode::kIoError, "cannot write '" + path + "'");
  }
  out << tracer.to_json() << "\n";
  return Status();
}

}  // namespace ezrt::obs
