// Span tracer emitting Chrome trace_event JSON.
//
// The pipeline (spec parse -> TPN build -> reduce -> search -> table ->
// codegen) records each stage as a complete ("X") event; the dispatcher
// simulation logs its dispatch/preempt/miss activity on a separate virtual-
// time track. The output loads directly in chrome://tracing and Perfetto
// (https://ui.perfetto.dev) — see docs/observability.md.
//
// Recording is mutex-protected (one lock per finished span, never on a
// per-state hot path) and every entry point is null-tracer-safe: a Span
// constructed over a nullptr Tracer is a no-op, so instrumented code needs
// no conditionals.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "base/result.hpp"

namespace ezrt::obs {

/// Track ("process") ids inside the trace. Wall-clock pipeline stages and
/// virtual-time dispatcher activity must not share a timeline: Perfetto
/// renders each pid as its own named process track.
inline constexpr std::uint32_t kTrackPipeline = 1;  ///< wall clock, us
inline constexpr std::uint32_t kTrackVirtual = 2;   ///< model time units

class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// One recorded trace_event. `args_json` is either empty or a complete
  /// JSON object literal spliced into the event's "args".
  struct Event {
    std::string name;
    std::string cat;
    std::string args_json;
    char ph = 'X';          ///< 'X' complete, 'i' instant
    std::uint64_t ts = 0;   ///< us (pipeline) or model time (virtual)
    std::uint64_t dur = 0;  ///< meaningful for 'X' events
    std::uint32_t track = kTrackPipeline;
    std::uint32_t tid = 0;
  };

  /// Microseconds since this tracer's construction (monotonic clock).
  [[nodiscard]] std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Records a complete event with an explicit timestamp and duration.
  void complete(std::string_view name, std::string_view cat,
                std::uint64_t ts, std::uint64_t dur,
                std::string args_json = {},
                std::uint32_t track = kTrackPipeline);

  /// Records an instant event at now_us() (pipeline track)...
  void instant(std::string_view name, std::string_view cat,
               std::string args_json = {});
  /// ...or at an explicit (e.g. virtual) timestamp.
  void instant_at(std::string_view name, std::string_view cat,
                  std::uint64_t ts, std::string args_json = {},
                  std::uint32_t track = kTrackPipeline);

  /// Snapshot of everything recorded so far, ts-ordered.
  [[nodiscard]] std::vector<Event> events() const;

  /// The full Chrome trace document: {"traceEvents":[...],...}. Metadata
  /// events naming the tracks are prepended automatically.
  [[nodiscard]] std::string to_json() const;

  /// RAII span: records a complete event from construction to destruction.
  /// Null-tracer-safe and movable; `set_args` attaches a JSON object
  /// literal that lands in the event's "args".
  class Span {
   public:
    Span(Tracer* tracer, std::string_view name, std::string_view cat)
        : tracer_(tracer), name_(name), cat_(cat) {
      if (tracer_ != nullptr) {
        start_ = tracer_->now_us();
      }
    }
    Span(Span&& other) noexcept
        : tracer_(other.tracer_),
          name_(std::move(other.name_)),
          cat_(std::move(other.cat_)),
          args_(std::move(other.args_)),
          start_(other.start_) {
      other.tracer_ = nullptr;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span& operator=(Span&&) = delete;

    void set_args(std::string args_json) { args_ = std::move(args_json); }

    ~Span() {
      if (tracer_ != nullptr) {
        const std::uint64_t end = tracer_->now_us();
        tracer_->complete(name_, cat_, start_, end - start_,
                          std::move(args_));
      }
    }

   private:
    Tracer* tracer_;
    std::string name_;
    std::string cat_;
    std::string args_;
    std::uint64_t start_ = 0;
  };

 private:
  /// Small sequential id for the calling thread (callers hold `mu_`).
  std::uint32_t tid_locked();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::thread::id, std::uint32_t> tids_;
};

using Span = Tracer::Span;

/// Writes `tracer.to_json()` to `path`.
[[nodiscard]] Status write_trace_file(const Tracer& tracer,
                                      const std::string& path);

}  // namespace ezrt::obs
