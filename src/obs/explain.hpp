// Verdict provenance (docs/explain.md): turns a search verdict into an
// explanation a designer can act on. Three layers:
//
//   1. analytic certificates — the admission pre-checks plus bus-
//      saturation and sync-budget token-time bounds, each a named
//      necessary/sufficient condition with the numbers behind it; a
//      violated necessary condition explains infeasibility without any
//      search;
//   2. blame attribution — the engines' per-place deadline-watchdog /
//      contention counters and per-task doom certificates
//      (sched/attribution.hpp), mapped back to task and resource names;
//   3. culprit minimization and slack — deletion-based 1-minimal
//      infeasible task subsets, the smallest feasible sync budget K, and
//      per-task WCET slack (headroom when feasible, required reduction
//      when not), all via deterministic serial re-runs of the guided
//      engine (runtime::schedulable).
//
// Everything here is byte-deterministic for a fixed spec and options:
// re-run probes are forced serial, and no wall-clock value enters the
// output. Compiled as its own library (ezrt_explain) because ezrt_sched
// links ezrt_obs — the dependency points the other way.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sched/dfs.hpp"
#include "sched/schedule_table.hpp"
#include "spec/specification.hpp"

namespace ezrt::obs {

class JsonWriter;

/// One named analytic condition with its verdict: "violated" (a necessary
/// condition failed — the spec is infeasible under every policy),
/// "satisfied" (a sufficient condition passed), or "inconclusive".
struct Certificate {
  std::string name;
  std::string verdict;
  std::string detail;
};

/// Search-attributed blame for one task (layer 2).
struct TaskBlame {
  std::string task;
  /// Deadline prunes in which this task's watchdog place was marked.
  std::uint64_t watchdog_hits = 0;
  /// Doom certificates naming this task's instance as unable to make its
  /// deadline (state classes only).
  std::uint64_t doomed_prunes = 0;
};

/// Search-attributed blame for one resource place (layer 2).
struct ResourceBlame {
  std::string resource;  ///< place name: pproc_*, pbus_*, pexcl_*, psync_pool
  std::string kind;      ///< "processor" | "bus" | "lock" | "sync-pool"
  /// Prunes at which this place held no token (fully claimed elsewhere).
  std::uint64_t contention = 0;
};

/// Layer-3 culprit set for an infeasible verdict.
struct CulpritReport {
  /// 1-minimal task subset that is still infeasible on its own: removing
  /// any single listed task makes the remainder feasible.
  std::vector<std::string> tasks;
  /// False when a re-run probe was inconclusive (budget/cancel) and the
  /// subset may not be minimal.
  bool minimized = false;
  std::uint32_t sync_budget = 0;  ///< the K the verdict was produced under
  /// Smallest feasible K found by binary search above sync_budget; 0 when
  /// no K up to the cap restores feasibility.
  std::uint32_t sync_budget_lower_bound = 0;
  /// True when raising K alone flips the verdict: the budget is a culprit.
  bool sync_budget_culprit = false;
};

/// Per-task WCET slack (layer 3). Direction depends on the verdict:
/// feasible — `amount` is the largest tolerable WCET increase; infeasible
/// — `amount` is the smallest reduction that flips the whole spec
/// feasible, with decisive=false when no reduction of this task alone
/// suffices.
struct TaskSlack {
  std::string task;
  Time amount = 0;
  bool decisive = true;
};

/// Binding constraints of a feasible schedule: what would give first.
struct BindingConstraints {
  std::string tightest_task;  ///< smallest worst-case slack
  Time tightest_slack = 0;
  std::string busiest_processor;
  double max_processor_utilization = 0.0;
  double bus_utilization = 0.0;
  std::uint32_t sync_budget = 0;
  std::uint32_t sync_high_water = 0;
};

struct Explanation {
  sched::SearchStatus status = sched::SearchStatus::kInfeasible;
  /// False when layer 1 already proved the verdict and no search ran.
  bool searched = false;
  std::vector<Certificate> certificates;
  bool attribution_collected = false;
  std::vector<TaskBlame> tasks;          ///< nonzero blame only, id order
  std::vector<ResourceBlame> resources;  ///< nonzero blame only, id order
  std::uint64_t doomed_unattributed = 0;
  std::optional<CulpritReport> culprits;      ///< infeasible verdicts
  std::vector<TaskSlack> slack;               ///< feasible + infeasible
  /// Largest feasible uniform WCET scaling in permille (feasible only).
  std::uint32_t max_scaling_permille = 0;
  std::optional<BindingConstraints> binding;  ///< feasible verdicts
};

struct ExplainOptions {
  /// Options of the primary search; layer-3 probes derive from these
  /// (same pruning/policy, forced serial bestfirst with state classes, no
  /// telemetry) so answers are relative to the configured search mode.
  /// The state budget stays as the deterministic re-run guard; wall and
  /// memory limits are honored too but trade byte-determinism for
  /// boundedness (docs/explain.md §4).
  sched::SchedulerOptions scheduler;
  /// Run layer 3 (culprit minimization, K search, slack).
  bool minimize = true;
  /// Cap for the sync-budget lower-bound search.
  std::uint32_t sync_budget_cap = 64;
};

/// Layer 1 alone: analytic certificates, no search. Microseconds.
[[nodiscard]] std::vector<Certificate> analytic_certificates(
    const spec::Specification& spec);

/// True when any certificate is a violated necessary condition.
[[nodiscard]] bool certificates_prove_infeasible(
    const std::vector<Certificate>& certificates);

/// Builds the full explanation. `outcome` is the primary search result
/// (with SearchOutcome::attribution when the caller enabled it), or null
/// when layer 1 already proved infeasibility and no search ran; `net` is
/// the built model (for place/task name mapping, null only with null
/// outcome); `table` is the synthesized schedule for feasible verdicts.
[[nodiscard]] Explanation build_explanation(
    const spec::Specification& spec, const tpn::TimePetriNet* net,
    const sched::SearchOutcome* outcome, const sched::ScheduleTable* table,
    const ExplainOptions& options);

/// Human-readable rendering for the CLI.
[[nodiscard]] std::string render_explanation(const Explanation& e);

/// Emits the explanation as a JSON object in value position (run-report
/// schema v5, docs/schemas/report.schema.json).
void write_explanation(JsonWriter& w, const Explanation& e);

}  // namespace ezrt::obs
