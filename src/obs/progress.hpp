// Live search progress: a lock-free sink the engines publish into and a
// heartbeat thread that renders it to a stream.
//
// The split keeps serial determinism untouched: the search only *stores*
// relaxed atomics (masked to once every kPublishMask+1 admitted states, so
// the hot loop pays one predicted branch); the reporter thread *reads* them
// on its own monotonic tick and never feeds anything back. Under
// EZRT_NO_TELEMETRY publishing compiles out entirely.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <thread>

#include "obs/telemetry.hpp"

namespace ezrt::obs {

/// Shared atomics describing a search in flight. All stores are relaxed:
/// readers get a recent, not necessarily mutually consistent, picture —
/// exactly what a heartbeat needs.
struct ProgressSink {
  /// Publish every (kPublishMask + 1)-th admitted state.
  static constexpr std::uint64_t kPublishMask = 63;

  std::atomic<std::uint64_t> states{0};       ///< admitted states
  std::atomic<std::uint64_t> transitions{0};  ///< fire() applications
  std::atomic<std::uint64_t> pruned{0};       ///< all prune reasons summed
  std::atomic<std::uint64_t> depth{0};        ///< current DFS frontier depth
  std::atomic<std::uint64_t> queue{0};        ///< shared work-queue length
  std::atomic<std::uint64_t> idle_workers{0}; ///< workers parked hungry

  void publish(std::uint64_t states_now, std::uint64_t transitions_now,
               std::uint64_t pruned_now, std::uint64_t depth_now) noexcept {
    if constexpr (kTelemetryEnabled) {
      states.store(states_now, std::memory_order_relaxed);
      transitions.store(transitions_now, std::memory_order_relaxed);
      pruned.store(pruned_now, std::memory_order_relaxed);
      depth.store(depth_now, std::memory_order_relaxed);
    } else {
      (void)states_now;
      (void)transitions_now;
      (void)pruned_now;
      (void)depth_now;
    }
  }
};

/// Background heartbeat: every `interval` prints one line of search
/// progress (states, states/s, fired, pruned, depth, queue, idle) to `os`,
/// and one final line when stopped — so even sub-interval runs leave a
/// record. Construction starts the thread; stop()/destruction joins it.
class ProgressReporter {
 public:
  ProgressReporter(const ProgressSink& sink, std::ostream& os,
                   std::chrono::milliseconds interval);
  ~ProgressReporter() { stop(); }

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Prints the final line and joins the thread (idempotent).
  void stop();

 private:
  void loop();
  void print_line(double seconds);

  const ProgressSink* sink_;
  std::ostream* os_;
  std::chrono::milliseconds interval_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t last_states_ = 0;
  std::chrono::steady_clock::time_point last_tick_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace ezrt::obs
