#include "obs/explain.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "base/cancel.hpp"
#include "builder/tpn_builder.hpp"
#include "obs/json.hpp"
#include "runtime/admission.hpp"
#include "runtime/metrics.hpp"
#include "runtime/sensitivity.hpp"

namespace ezrt::obs {

namespace {

/// Two-decimal fixed rendering for ratios; snprintf so the output is
/// locale-independent and byte-deterministic.
std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

const char* verdict_name(runtime::AdmissionVerdict v) {
  switch (v) {
    case runtime::AdmissionVerdict::kInfeasible:
      return "violated";
    case runtime::AdmissionVerdict::kSchedulable:
      return "satisfied";
    case runtime::AdmissionVerdict::kInconclusive:
      return "inconclusive";
  }
  return "inconclusive";
}

/// Layer-3 re-runs derive from the primary options but are forced onto
/// the deterministic serial path: the guided best-first engine with state
/// classes on (verdict-equivalent to DFS, docs/search.md) and no
/// telemetry/attribution/progress. Pruning, firing policy, reduction and
/// the state budget are inherited, so answers stay relative to the
/// configured search mode — the sensitivity-module contract.
sched::SchedulerOptions probe_options(sched::SchedulerOptions base) {
  base.objective = sched::Objective::kFirstFeasible;
  base.search_engine = sched::SearchEngine::kBestFirst;
  base.state_classes = sched::StateClassMode::kOn;
  base.threads = 0;
  base.deterministic = false;
  base.collect_telemetry = false;
  base.collect_attribution = false;
  base.progress = nullptr;
  base.tracer = nullptr;
  return base;
}

enum class Probe : std::uint8_t { kFeasible, kInfeasible, kInconclusive };

/// Tri-state feasibility of a candidate under the probe options. A
/// violated analytic necessary condition proves infeasibility without a
/// search (and keeps trivially-doomed probes at microseconds); guard and
/// budget verdicts are inconclusive, never misread as infeasible.
Probe probe_spec(const spec::Specification& candidate,
                 const sched::SchedulerOptions& options) {
  if (runtime::check_admission(candidate).overall ==
      runtime::AdmissionVerdict::kInfeasible) {
    return Probe::kInfeasible;
  }
  auto model = builder::build_tpn(candidate);
  if (!model.ok()) {
    return Probe::kInfeasible;  // e.g. a WCET that no longer fits its window
  }
  const auto out = sched::DfsScheduler(model.value().net, options).search();
  if (out.status == sched::SearchStatus::kFeasible) {
    return Probe::kFeasible;
  }
  if (out.status == sched::SearchStatus::kInfeasible) {
    return Probe::kInfeasible;
  }
  return Probe::kInconclusive;
}

/// Copy of `spec` restricted to the tasks with keep[id] set. Processors
/// are copied wholesale (ids unchanged); precedence/exclusion edges and
/// messages survive only when every endpoint is kept.
spec::Specification subset_spec(const spec::Specification& spec,
                                const std::vector<bool>& keep) {
  spec::Specification out;
  out.set_sync_budget(spec.sync_budget());
  for (ProcessorId p : spec.processor_ids()) {
    out.add_processor(spec.processor(p));
  }
  std::vector<TaskId> remap(spec.task_count());
  for (TaskId t : spec.task_ids()) {
    if (!keep[t.value()]) {
      continue;
    }
    spec::Task task = spec.task(t);
    task.precedes.clear();
    task.excludes.clear();
    task.precedes_msgs.clear();
    remap[t.value()] = out.add_task(std::move(task));
  }
  for (TaskId t : spec.task_ids()) {
    if (!keep[t.value()]) {
      continue;
    }
    for (TaskId succ : spec.task(t).precedes) {
      if (keep[succ.value()]) {
        out.add_precedence(remap[t.value()], remap[succ.value()]);
      }
    }
    for (TaskId ex : spec.task(t).excludes) {
      // Exclusion is symmetric and stored closed; add each pair once.
      if (keep[ex.value()] && t.value() < ex.value()) {
        out.add_exclusion(remap[t.value()], remap[ex.value()]);
      }
    }
  }
  for (MessageId m : spec.message_ids()) {
    const spec::Message& msg = spec.message(m);
    if (!msg.sender.valid() || !msg.receiver.valid() ||
        !keep[msg.sender.value()] || !keep[msg.receiver.value()]) {
      continue;
    }
    const MessageId copy = out.add_message(msg);
    out.connect_message(remap[msg.sender.value()], copy,
                        remap[msg.receiver.value()]);
  }
  return out;
}

const char* resource_kind(tpn::PlaceRole role) {
  switch (role) {
    case tpn::PlaceRole::kProcessor:
      return "processor";
    case tpn::PlaceRole::kBus:
      return "bus";
    case tpn::PlaceRole::kExclusionLock:
      return "lock";
    case tpn::PlaceRole::kSyncPool:
      return "sync-pool";
    default:
      return "resource";
  }
}

/// Layer 2: folds the place/task-indexed counters back onto spec names.
void map_attribution(const spec::Specification& spec,
                     const tpn::TimePetriNet& net,
                     const sched::AttributionCounters& a, Explanation& e) {
  e.attribution_collected = true;
  std::vector<std::uint64_t> watchdog(spec.task_count(), 0);
  for (PlaceId p : net.place_ids()) {
    const tpn::Place& place = net.place(p);
    const std::uint64_t hits =
        p.value() < a.deadline_hits.size() ? a.deadline_hits[p.value()] : 0;
    if (hits > 0 && place.task.valid() &&
        place.task.value() < watchdog.size()) {
      watchdog[place.task.value()] += hits;
    }
    const std::uint64_t waits =
        p.value() < a.contention.size() ? a.contention[p.value()] : 0;
    if (waits > 0) {
      e.resources.push_back(
          ResourceBlame{place.name, resource_kind(place.role), waits});
    }
  }
  for (TaskId t : spec.task_ids()) {
    const std::uint64_t doomed =
        t.value() < a.doomed_hits.size() ? a.doomed_hits[t.value()] : 0;
    if (watchdog[t.value()] > 0 || doomed > 0) {
      e.tasks.push_back(
          TaskBlame{spec.task(t).name, watchdog[t.value()], doomed});
    }
  }
  e.doomed_unattributed = a.doomed_unattributed;
}

/// Deletion-based 1-minimality: repeatedly drop any task whose removal
/// keeps the remainder infeasible, until a fixed point. Deterministic
/// (TaskId order) and sound: only a proven-infeasible probe removes.
void minimize_culprits(const spec::Specification& spec,
                       const sched::SchedulerOptions& probe,
                       CulpritReport& report) {
  std::vector<bool> keep(spec.task_count(), true);
  std::size_t kept = spec.task_count();
  report.minimized = true;
  bool progress = true;
  while (progress && kept > 1) {
    progress = false;
    for (TaskId t : spec.task_ids()) {
      if (!keep[t.value()] || kept == 1) {
        continue;
      }
      keep[t.value()] = false;
      const Probe r = probe_spec(subset_spec(spec, keep), probe);
      if (r == Probe::kInfeasible) {
        --kept;
        progress = true;
      } else {
        keep[t.value()] = true;
        if (r == Probe::kInconclusive) {
          report.minimized = false;
        }
      }
    }
  }
  for (TaskId t : spec.task_ids()) {
    if (keep[t.value()]) {
      report.tasks.push_back(spec.task(t).name);
    }
  }
}

/// Smallest K > sync_budget that flips the verdict feasible: exponential
/// climb to a feasible upper bound, then binary search down.
void sync_lower_bound(const spec::Specification& spec,
                      const sched::SchedulerOptions& probe,
                      std::uint32_t cap, CulpritReport& report) {
  const std::uint32_t k0 = spec.sync_budget();
  if (k0 == 0) {
    return;
  }
  auto feasible_with = [&](std::uint32_t k) {
    spec::Specification candidate = spec;
    candidate.set_sync_budget(k);
    return probe_spec(candidate, probe) == Probe::kFeasible;
  };
  std::uint32_t hi = 0;  // smallest known-feasible K, 0 = none yet
  std::uint32_t lo = k0;  // largest known-infeasible K (the primary verdict)
  for (std::uint32_t step = 1; k0 + step <= cap && k0 + step > k0;
       step *= 2) {
    if (feasible_with(k0 + step)) {
      hi = k0 + step;
      break;
    }
    lo = k0 + step;
  }
  if (hi == 0 && cap > lo && feasible_with(cap)) {
    hi = cap;  // the doubling overshot the cap; try the cap itself
  }
  if (hi == 0) {
    return;  // no K up to the cap restores feasibility: K is not the culprit
  }
  // Invariant: lo infeasible, hi feasible. Bisect for the smallest
  // feasible K in (lo, hi].
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (feasible_with(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  report.sync_budget_lower_bound = hi;
  report.sync_budget_culprit = true;
}

/// Infeasible direction: smallest WCET reduction of `task` alone that
/// makes the whole spec feasible (monotone in the reduction, so binary
/// search); decisive=false when even computation = 1 stays infeasible.
TaskSlack reduction_slack(const spec::Specification& spec, TaskId task,
                          const sched::SchedulerOptions& probe) {
  TaskSlack slack;
  slack.task = spec.task(task).name;
  const Time c = spec.task(task).timing.computation;
  auto feasible_with_reduction = [&](Time r) {
    spec::Specification candidate = spec;
    candidate.task(task).timing.computation = c - r;
    return probe_spec(candidate, probe) == Probe::kFeasible;
  };
  Time lo = 0;      // known infeasible (the primary verdict)
  Time hi = c - 1;  // computation floor of 1
  if (hi <= 0 || !feasible_with_reduction(hi)) {
    slack.decisive = false;
    return slack;
  }
  while (hi - lo > 1) {
    const Time mid = lo + (hi - lo) / 2;
    if (feasible_with_reduction(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  slack.amount = hi;
  return slack;
}

}  // namespace

std::vector<Certificate> analytic_certificates(
    const spec::Specification& spec) {
  std::vector<Certificate> certs;
  const runtime::AdmissionReport admission = runtime::check_admission(spec);
  certs.reserve(admission.checks.size() + 2);
  for (const runtime::AdmissionCheck& check : admission.checks) {
    certs.push_back(
        Certificate{check.name, verdict_name(check.verdict), check.detail});
  }

  const auto ps = spec.schedule_period();
  if (!ps.ok()) {
    return certs;
  }
  const Time period = ps.value();

  // Bus saturation (necessary): messages on one bus serialize, so their
  // summed occupancy (arbitration + transfer, per instance) must fit the
  // schedule period.
  std::map<std::string, Time> bus_demand;
  for (MessageId m : spec.message_ids()) {
    const spec::Message& msg = spec.message(m);
    if (!msg.sender.valid()) {
      continue;
    }
    const auto instances = spec.instance_count(msg.sender);
    if (!instances.ok()) {
      continue;
    }
    bus_demand[msg.bus] +=
        instances.value() * (msg.grant_bus + msg.communication);
  }
  for (const auto& [bus, demand] : bus_demand) {
    Certificate cert;
    cert.name = "bus saturation (" + bus + ")";
    cert.verdict = demand > period ? "violated" : "inconclusive";
    cert.detail = "occupancy " + std::to_string(demand) +
                  (demand > period ? " > " : " <= ") + "period " +
                  std::to_string(period);
    certs.push_back(std::move(cert));
  }

  // Sync-budget token-time bound (necessary): the K-token pool supplies at
  // most K * period token-time per schedule period; transfers hold a token
  // for at least `communication`, exclusion-locked tasks for at least
  // their WCET per instance.
  const std::uint32_t k = spec.sync_budget();
  if (k > 0) {
    Time hold = 0;
    for (MessageId m : spec.message_ids()) {
      const spec::Message& msg = spec.message(m);
      if (!msg.sender.valid()) {
        continue;
      }
      const auto instances = spec.instance_count(msg.sender);
      if (instances.ok()) {
        hold += instances.value() * msg.communication;
      }
    }
    for (TaskId t : spec.task_ids()) {
      if (spec.task(t).excludes.empty()) {
        continue;
      }
      const auto instances = spec.instance_count(t);
      if (instances.ok()) {
        hold += instances.value() * spec.task(t).timing.computation;
      }
    }
    if (hold > 0) {
      const Time supply = static_cast<Time>(k) * period;
      Certificate cert;
      cert.name = "sync budget token-time (K=" + std::to_string(k) + ")";
      cert.verdict = hold > supply ? "violated" : "inconclusive";
      cert.detail = "token-time demand >= " + std::to_string(hold) +
                    (hold > supply ? " > " : " <= ") + "supply K*period = " +
                    std::to_string(supply);
      certs.push_back(std::move(cert));
    }
  }
  return certs;
}

bool certificates_prove_infeasible(
    const std::vector<Certificate>& certificates) {
  return std::any_of(
      certificates.begin(), certificates.end(),
      [](const Certificate& c) { return c.verdict == "violated"; });
}

Explanation build_explanation(const spec::Specification& spec,
                              const tpn::TimePetriNet* net,
                              const sched::SearchOutcome* outcome,
                              const sched::ScheduleTable* table,
                              const ExplainOptions& options) {
  Explanation e;
  e.certificates = analytic_certificates(spec);
  e.searched = outcome != nullptr;
  e.status = outcome != nullptr ? outcome->status
                                : sched::SearchStatus::kInfeasible;

  if (outcome != nullptr && outcome->attribution.collected && net != nullptr) {
    map_attribution(spec, *net, outcome->attribution, e);
  }

  const bool cancelled =
      options.scheduler.cancel != nullptr &&
      options.scheduler.cancel->requested();
  const sched::SchedulerOptions probe = probe_options(options.scheduler);

  const bool infeasible = e.status == sched::SearchStatus::kInfeasible &&
                          (e.searched || certificates_prove_infeasible(
                                             e.certificates));
  if (infeasible && options.minimize && !cancelled) {
    CulpritReport culprits;
    culprits.sync_budget = spec.sync_budget();
    minimize_culprits(spec, probe, culprits);
    sync_lower_bound(spec, probe, options.sync_budget_cap, culprits);
    // WCET slack for the culprits only: the minimal subset names the
    // tasks whose timing actually drives the verdict.
    for (const std::string& name : culprits.tasks) {
      if (const auto id = spec.find_task(name)) {
        e.slack.push_back(reduction_slack(spec, *id, probe));
      }
    }
    e.culprits = std::move(culprits);
  }

  if (e.status == sched::SearchStatus::kFeasible) {
    if (table != nullptr) {
      const runtime::ScheduleMetrics metrics =
          runtime::compute_metrics(spec, *table);
      BindingConstraints binding;
      Time tightest = kTimeInfinity;
      for (const runtime::TaskMetrics& tm : metrics.tasks) {
        if (tm.instances == 0 || !tm.task.valid()) {
          continue;
        }
        if (tm.worst_slack < tightest) {
          tightest = tm.worst_slack;
          binding.tightest_task = spec.task(tm.task).name;
          binding.tightest_slack = tm.worst_slack;
        }
      }
      for (const runtime::ProcessorMetrics& pm : metrics.processors) {
        if (pm.utilization >= binding.max_processor_utilization &&
            pm.processor.valid()) {
          binding.max_processor_utilization = pm.utilization;
          binding.busiest_processor = spec.processor(pm.processor).name;
        }
      }
      binding.bus_utilization = metrics.bus_utilization;
      binding.sync_budget = metrics.sync_budget;
      binding.sync_high_water = metrics.sync_high_water;
      e.binding = std::move(binding);
    }
    if (options.minimize && !cancelled) {
      runtime::SensitivityOptions sens;
      sens.scheduler = probe;
      const runtime::SensitivityReport report =
          runtime::analyze_sensitivity(spec, sens);
      e.max_scaling_permille = report.max_scaling_permille;
      for (const runtime::TaskHeadroom& h : report.headroom) {
        e.slack.push_back(
            TaskSlack{spec.task(h.task).name, h.extra_wcet, true});
      }
    }
  }
  return e;
}

std::string render_explanation(const Explanation& e) {
  std::string out;
  out += "verdict: ";
  out += sched::to_string(e.status);
  if (!e.searched) {
    out += " (analytic, no search needed)";
  }
  out += "\n\ncertificates:\n";
  for (const Certificate& c : e.certificates) {
    out += "  [" + c.verdict + "] " + c.name;
    if (!c.detail.empty()) {
      out += ": " + c.detail;
    }
    out += "\n";
  }

  if (e.attribution_collected && (!e.tasks.empty() || !e.resources.empty())) {
    out += "\nblame (search attribution):\n";
    for (const TaskBlame& t : e.tasks) {
      out += "  task " + t.task + ": " + std::to_string(t.watchdog_hits) +
             " deadline-watchdog hits";
      if (t.doomed_prunes > 0) {
        out += ", " + std::to_string(t.doomed_prunes) + " doomed prunes";
      }
      out += "\n";
    }
    for (const ResourceBlame& r : e.resources) {
      out += "  " + r.kind + " " + r.resource + ": contended at " +
             std::to_string(r.contention) + " prunes\n";
    }
  }

  if (e.culprits.has_value()) {
    const CulpritReport& c = *e.culprits;
    out += "\nculprits (1-minimal infeasible task subset";
    if (!c.minimized) {
      out += ", minimization inconclusive";
    }
    out += "):\n  tasks:";
    for (const std::string& t : c.tasks) {
      out += " " + t;
    }
    out += "\n";
    if (c.sync_budget_culprit) {
      out += "  sync budget: K=" + std::to_string(c.sync_budget) +
             " < minimum feasible budget " +
             std::to_string(c.sync_budget_lower_bound) +
             " — raising K alone restores feasibility\n";
    } else if (c.sync_budget > 0) {
      out += "  sync budget: K=" + std::to_string(c.sync_budget) +
             " is not the culprit alone (no tested K restores "
             "feasibility)\n";
    }
  }

  if (!e.slack.empty()) {
    out += "\nslack:\n";
    for (const TaskSlack& s : e.slack) {
      if (e.status == sched::SearchStatus::kFeasible) {
        out += "  task " + s.task + ": +" + std::to_string(s.amount) +
               " WCET tolerable\n";
      } else if (s.decisive) {
        out += "  reduce " + s.task + ".wcet by >= " +
               std::to_string(s.amount) + " to become feasible\n";
      } else {
        out += "  no WCET reduction of " + s.task +
               " alone restores feasibility\n";
      }
    }
  }
  if (e.max_scaling_permille > 0) {
    out += "  uniform WCET scaling: x" +
           fmt2(static_cast<double>(e.max_scaling_permille) / 1000.0) + "\n";
  }

  if (e.binding.has_value()) {
    const BindingConstraints& b = *e.binding;
    out += "\nbinding constraints:\n";
    out += "  tightest slack: task " + b.tightest_task + ", worst slack " +
           std::to_string(b.tightest_slack) + "\n";
    out += "  busiest processor: " + b.busiest_processor + " at utilization " +
           fmt2(b.max_processor_utilization) + "\n";
    if (b.bus_utilization > 0.0) {
      out += "  bus utilization: " + fmt2(b.bus_utilization) + "\n";
    }
    if (b.sync_budget > 0) {
      out += "  sync budget high water: " +
             std::to_string(b.sync_high_water) + " of K=" +
             std::to_string(b.sync_budget) + "\n";
    }
  }
  return out;
}

void write_explanation(JsonWriter& w, const Explanation& e) {
  w.begin_object();
  w.member("status", sched::to_string(e.status));
  w.member("searched", e.searched);
  w.key("certificates").begin_array();
  for (const Certificate& c : e.certificates) {
    w.begin_object();
    w.member("name", c.name);
    w.member("verdict", c.verdict);
    w.member("detail", c.detail);
    w.end_object();
  }
  w.end_array();

  w.key("attribution").begin_object();
  w.member("collected", e.attribution_collected);
  w.key("tasks").begin_array();
  for (const TaskBlame& t : e.tasks) {
    w.begin_object();
    w.member("task", t.task);
    w.member("watchdog_hits", t.watchdog_hits);
    w.member("doomed_prunes", t.doomed_prunes);
    w.end_object();
  }
  w.end_array();
  w.key("resources").begin_array();
  for (const ResourceBlame& r : e.resources) {
    w.begin_object();
    w.member("resource", r.resource);
    w.member("kind", r.kind);
    w.member("contention", r.contention);
    w.end_object();
  }
  w.end_array();
  w.member("doomed_unattributed", e.doomed_unattributed);
  w.end_object();

  if (e.culprits.has_value()) {
    const CulpritReport& c = *e.culprits;
    w.key("culprits").begin_object();
    w.key("tasks").begin_array();
    for (const std::string& t : c.tasks) {
      w.value(t);
    }
    w.end_array();
    w.member("minimized", c.minimized);
    w.member("sync_budget", c.sync_budget);
    w.member("sync_budget_lower_bound", c.sync_budget_lower_bound);
    w.member("sync_budget_culprit", c.sync_budget_culprit);
    w.end_object();
  }

  w.key("slack").begin_array();
  for (const TaskSlack& s : e.slack) {
    w.begin_object();
    w.member("task", s.task);
    if (e.status == sched::SearchStatus::kFeasible) {
      w.member("wcet_headroom", static_cast<std::int64_t>(s.amount));
    } else {
      w.member("decisive", s.decisive);
      if (s.decisive) {
        w.member("wcet_reduction_needed", static_cast<std::int64_t>(s.amount));
      }
    }
    w.end_object();
  }
  w.end_array();
  if (e.max_scaling_permille > 0) {
    w.member("max_scaling_permille", e.max_scaling_permille);
  }

  if (e.binding.has_value()) {
    const BindingConstraints& b = *e.binding;
    w.key("binding").begin_object();
    w.member("tightest_task", b.tightest_task);
    w.member("tightest_slack", static_cast<std::int64_t>(b.tightest_slack));
    w.member("busiest_processor", b.busiest_processor);
    w.member("max_processor_utilization", b.max_processor_utilization);
    w.member("bus_utilization", b.bus_utilization);
    w.member("sync_budget", b.sync_budget);
    w.member("sync_high_water", b.sync_high_water);
    w.end_object();
  }
  w.end_object();
}

}  // namespace ezrt::obs
