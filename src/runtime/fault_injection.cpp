#include "runtime/fault_injection.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <tuple>

#include "base/cancel.hpp"
#include "base/hash.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "runtime/dispatcher_sim.hpp"
#include "runtime/online_sched.hpp"

namespace ezrt::runtime {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWcetOverrun:
      return "wcet-overrun";
    case FaultKind::kReleaseDrift:
      return "release-drift";
    case FaultKind::kInterferenceBurst:
      return "interference-burst";
    case FaultKind::kTransientFailure:
      return "transient-failure";
  }
  return "unknown";
}

const char* to_string(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kAbort:
      return "abort";
    case RecoveryPolicy::kSkipInstance:
      return "skip-instance";
    case RecoveryPolicy::kRetryNextSlot:
      return "retry-next-slot";
    case RecoveryPolicy::kFallbackOnline:
      return "fallback-online";
  }
  return "unknown";
}

Result<RecoveryPolicy> parse_recovery_policy(std::string_view text) {
  if (text == "abort") {
    return RecoveryPolicy::kAbort;
  }
  if (text == "skip-instance") {
    return RecoveryPolicy::kSkipInstance;
  }
  if (text == "retry-next-slot") {
    return RecoveryPolicy::kRetryNextSlot;
  }
  if (text == "fallback-online") {
    return RecoveryPolicy::kFallbackOnline;
  }
  return make_error(ErrorCode::kInvalidArgument,
                    "unknown recovery policy '" + std::string(text) +
                        "' (abort|skip-instance|retry-next-slot|"
                        "fallback-online)");
}

namespace {

[[nodiscard]] Result<double> parse_double(std::string_view text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(text), &used);
    if (used != text.size() || !(v >= 0.0)) {
      return make_error(ErrorCode::kInvalidArgument,
                        "expected a non-negative number, got '" +
                            std::string(text) + "'");
    }
    return v;
  } catch (const std::exception&) {
    return make_error(ErrorCode::kInvalidArgument,
                      "expected a number, got '" + std::string(text) + "'");
  }
}

}  // namespace

Result<std::vector<FaultSpec>> parse_fault_specs(std::string_view text) {
  std::vector<FaultSpec> specs;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view entry = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      if (comma == text.size()) {
        break;
      }
      return make_error(ErrorCode::kInvalidArgument,
                        "empty fault entry in '" + std::string(text) + "'");
    }
    std::vector<std::string_view> parts;
    std::size_t p = 0;
    while (p <= entry.size()) {
      const std::size_t colon = std::min(entry.find(':', p), entry.size());
      parts.push_back(entry.substr(p, colon - p));
      p = colon + 1;
    }
    if (parts.size() < 2 || parts.size() > 4) {
      return make_error(ErrorCode::kInvalidArgument,
                        "fault entry '" + std::string(entry) +
                            "' is not kind:probability[:scale[:absolute]]");
    }
    FaultSpec spec;
    if (parts[0] == "wcet") {
      spec.kind = FaultKind::kWcetOverrun;
    } else if (parts[0] == "drift") {
      spec.kind = FaultKind::kReleaseDrift;
    } else if (parts[0] == "burst") {
      spec.kind = FaultKind::kInterferenceBurst;
    } else if (parts[0] == "fail") {
      spec.kind = FaultKind::kTransientFailure;
    } else {
      return make_error(ErrorCode::kInvalidArgument,
                        "unknown fault kind '" + std::string(parts[0]) +
                            "' (wcet|drift|burst|fail)");
    }
    auto probability = parse_double(parts[1]);
    if (!probability.ok()) {
      return probability.error();
    }
    if (probability.value() > 1.0) {
      return make_error(ErrorCode::kInvalidArgument,
                        "fault probability must be in [0, 1]");
    }
    spec.probability = probability.value();
    if (parts.size() >= 3) {
      auto scale = parse_double(parts[2]);
      if (!scale.ok()) {
        return scale.error();
      }
      spec.scale = scale.value();
    }
    if (parts.size() == 4) {
      auto absolute = parse_double(parts[3]);
      if (!absolute.ok()) {
        return absolute.error();
      }
      spec.absolute = static_cast<Time>(std::llround(absolute.value()));
    }
    specs.push_back(spec);
    if (comma == text.size()) {
      break;
    }
  }
  if (specs.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "fault specification is empty");
  }
  return specs;
}

FaultPlan materialize_faults(const spec::Specification& spec,
                             const std::vector<FaultSpec>& specs,
                             std::uint64_t seed, double intensity) {
  FaultPlan plan;
  plan.seed = seed;
  plan.intensity = intensity;
  for (TaskId id : spec.task_ids()) {
    const spec::Task& task = spec.task(id);
    auto count = spec.instance_count(id);
    if (!count.ok()) {
      continue;  // hyper-period overflow; the caller couldn't schedule it
    }
    // Keyed by name, not TaskId: renumbering tasks in the document must
    // not reshuffle every draw.
    std::uint64_t task_hash = seed;
    for (char c : task.name) {
      task_hash = hash_mix(task_hash, static_cast<std::uint8_t>(c));
    }
    for (Time k = 0; k < count.value(); ++k) {
      unsigned seen = 0;  // first spec wins per (instance, kind)
      for (const FaultSpec& fault : specs) {
        const unsigned bit = 1u << static_cast<unsigned>(fault.kind);
        if ((seen & bit) != 0) {
          continue;
        }
        const std::uint64_t h = hash_mix(
            hash_mix(task_hash, k),
            static_cast<std::uint64_t>(fault.kind) + 1);
        const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
        const double probability =
            std::min(1.0, fault.probability * intensity);
        if (u >= probability) {
          continue;
        }
        seen |= bit;
        Time magnitude = 0;
        if (fault.kind != FaultKind::kTransientFailure) {
          const double scaled =
              fault.scale * intensity *
              static_cast<double>(task.timing.computation);
          magnitude = std::max<Time>(1, static_cast<Time>(std::llround(
                                            std::ceil(scaled)))) +
                      fault.absolute;
        }
        plan.faults.push_back(InjectedFault{
            fault.kind, id, static_cast<std::uint32_t>(k), magnitude});
      }
    }
  }
  return plan;
}

namespace {

[[nodiscard]] std::tuple<std::uint32_t, std::uint32_t, std::uint8_t>
fault_key(const InjectedFault& fault) {
  return {fault.task.value(), fault.instance,
          static_cast<std::uint8_t>(fault.kind)};
}

}  // namespace

FaultModel::FaultModel(FaultPlan plan) : plan_(std::move(plan)) {
  order_.resize(plan_.faults.size());
  for (std::uint32_t i = 0; i < order_.size(); ++i) {
    order_[i] = i;
  }
  std::sort(order_.begin(), order_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return fault_key(plan_.faults[a]) < fault_key(plan_.faults[b]);
            });
}

const InjectedFault* FaultModel::find(TaskId task, std::uint32_t instance,
                                      FaultKind kind) const {
  const std::tuple<std::uint32_t, std::uint32_t, std::uint8_t> key{
      task.value(), instance, static_cast<std::uint8_t>(kind)};
  auto it = std::lower_bound(
      order_.begin(), order_.end(), key,
      [&](std::uint32_t index, const auto& k) {
        return fault_key(plan_.faults[index]) < k;
      });
  if (it == order_.end() || fault_key(plan_.faults[*it]) != key) {
    return nullptr;
  }
  return &plan_.faults[*it];
}

namespace {

/// fallback-online: the dispatcher detects the first injected fault and
/// abandons the table for the preemptive EDF scheduler. Conservatively,
/// the whole hyper-period is accounted to the fallback regime (the table
/// prefix it abandons is feasible by construction), with every fault
/// folded into the job set: overruns and bursts inflate demand, transient
/// failures double it (run, detect, re-run), drift delays the release.
[[nodiscard]] FaultOutcome simulate_fallback_online(
    const spec::Specification& spec, const FaultModel& model,
    obs::Tracer* tracer) {
  FaultOutcome outcome;
  outcome.fallback_engaged = true;
  auto ps = spec.schedule_period();
  const Time horizon = ps.ok() ? ps.value() : 0;
  std::vector<OnlineJob> jobs;
  for (TaskId id : spec.task_ids()) {
    const spec::Task& task = spec.task(id);
    auto count = spec.instance_count(id);
    if (!count.ok()) {
      continue;
    }
    for (Time k = 0; k < count.value(); ++k) {
      const auto instance = static_cast<std::uint32_t>(k);
      const Time arrival = task.timing.phase + k * task.timing.period;
      Time release = arrival + task.timing.release;
      Time need = task.timing.computation;
      if (const InjectedFault* f =
              model.find(id, instance, FaultKind::kWcetOverrun)) {
        need += f->magnitude;
        ++outcome.wcet_overruns;
        ++outcome.injected;
      }
      if (const InjectedFault* f =
              model.find(id, instance, FaultKind::kInterferenceBurst)) {
        need += f->magnitude;
        ++outcome.interference_bursts;
        ++outcome.injected;
      }
      if (model.find(id, instance, FaultKind::kTransientFailure) !=
          nullptr) {
        need *= 2;
        ++outcome.transient_failures;
        ++outcome.injected;
      }
      if (const InjectedFault* f =
              model.find(id, instance, FaultKind::kReleaseDrift)) {
        release += f->magnitude;
        ++outcome.release_drifts;
        ++outcome.injected;
      }
      jobs.push_back(OnlineJob{id, instance, release, need,
                               arrival + task.timing.deadline});
    }
  }
  if (tracer != nullptr) {
    tracer->instant_at("recover:fallback-online", "fault", 0, "",
                       obs::kTrackVirtual);
  }
  const OnlineTailResult tail =
      simulate_edf_tail(std::move(jobs), 0, horizon);
  outcome.deadline_misses = tail.deadline_misses;
  return outcome;
}

}  // namespace

ResilienceReport run_campaign(const spec::Specification& spec,
                              const sched::ScheduleTable& table,
                              const std::vector<FaultSpec>& specs,
                              const CampaignOptions& options) {
  ResilienceReport report;
  report.spec_name = spec.name();
  report.seed = options.seed;
  report.trials = options.trials;
  report.fault_specs = specs;
  report.intensities = options.intensities;

  std::vector<PolicyResilience> summaries;
  for (RecoveryPolicy policy : options.policies) {
    PolicyResilience summary;
    summary.policy = policy;
    summaries.push_back(summary);
  }

  for (std::size_t ii = 0;
       ii < options.intensities.size() && !report.cancelled; ++ii) {
    const double intensity = options.intensities[ii];
    for (std::uint32_t trial = 0; trial < options.trials; ++trial) {
      if (options.cancel != nullptr && options.cancel->requested()) {
        report.cancelled = true;
        break;
      }
      // One plan per (intensity, trial), replayed under every policy, so
      // policies are judged against identical fault sequences.
      const std::uint64_t trial_seed =
          hash_mix(hash_mix(options.seed, ii + 1), trial + 1);
      const FaultModel model(
          materialize_faults(spec, specs, trial_seed, intensity));
      for (std::size_t pi = 0; pi < options.policies.size(); ++pi) {
        const RecoveryPolicy policy = options.policies[pi];
        TrialOutcome row;
        row.policy = policy;
        row.intensity = intensity;
        row.trial = trial;
        row.faults_planned = model.plan().faults.size();
        obs::Tracer* const tracer =
            trial == 0 ? options.tracer : nullptr;
        if (policy == RecoveryPolicy::kFallbackOnline) {
          row.outcome = simulate_fallback_online(spec, model, tracer);
          row.survived = row.outcome.deadline_misses == 0;
        } else {
          DispatchSimOptions sim;
          sim.faults = &model;
          sim.recovery = policy;
          sim.tracer = tracer;
          const DispatcherRun run = simulate_dispatcher(spec, table, sim);
          row.outcome = run.injection;
          row.survived =
              run.injection.deadline_misses == 0 && run.faults.empty();
        }
        report.rows.push_back(row);
        PolicyResilience& summary = summaries[pi];
        ++summary.trials_total;
        summary.faults_planned += row.faults_planned;
        summary.deadline_misses += row.outcome.deadline_misses;
        summary.skipped_instances += row.outcome.skipped_instances;
        summary.retries_recovered += row.outcome.retries_recovered;
        if (row.survived) {
          ++summary.trials_survived;
        } else if (!summary.failed ||
                   intensity < summary.first_failing_intensity) {
          summary.failed = true;
          summary.first_failing_intensity = intensity;
        }
      }
    }
  }
  report.policies = std::move(summaries);
  return report;
}

std::string resilience_report_json(const ResilienceReport& report) {
  obs::JsonWriter w;
  w.begin_object()
      .member("schema", "ezrt-resilience-report")
      .member("version", 1)
      .member("spec", std::string_view(report.spec_name))
      .member("seed", report.seed)
      .member("trials", report.trials)
      .member("cancelled", report.cancelled);
  w.key("faults").begin_array();
  for (const FaultSpec& spec : report.fault_specs) {
    w.begin_object()
        .member("kind", to_string(spec.kind))
        .member("probability", spec.probability)
        .member("scale", spec.scale)
        .member("absolute", spec.absolute)
        .end_object();
  }
  w.end_array();
  w.key("intensities").begin_array();
  for (double intensity : report.intensities) {
    w.value(intensity);
  }
  w.end_array();
  w.key("policies").begin_array();
  for (const PolicyResilience& p : report.policies) {
    w.begin_object()
        .member("policy", to_string(p.policy))
        .member("trials_total", p.trials_total)
        .member("trials_survived", p.trials_survived)
        .member("failed", p.failed);
    if (p.failed) {
      w.member("first_failing_intensity", p.first_failing_intensity);
    }
    w.member("faults_planned", p.faults_planned)
        .member("deadline_misses", p.deadline_misses)
        .member("skipped_instances", p.skipped_instances)
        .member("retries_recovered", p.retries_recovered)
        .end_object();
  }
  w.end_array();
  w.key("rows").begin_array();
  for (const TrialOutcome& row : report.rows) {
    w.begin_object()
        .member("policy", to_string(row.policy))
        .member("intensity", row.intensity)
        .member("trial", row.trial)
        .member("survived", row.survived)
        .member("faults_planned", row.faults_planned)
        .member("faults_manifested", row.outcome.injected)
        .member("wcet_overruns", row.outcome.wcet_overruns)
        .member("release_drifts", row.outcome.release_drifts)
        .member("interference_bursts", row.outcome.interference_bursts)
        .member("transient_failures", row.outcome.transient_failures)
        .member("deadline_misses", row.outcome.deadline_misses)
        .member("skipped_instances", row.outcome.skipped_instances)
        .member("retries", row.outcome.retries)
        .member("retries_recovered", row.outcome.retries_recovered)
        .member("fallback_engaged", row.outcome.fallback_engaged)
        .end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string format_resilience(const ResilienceReport& report) {
  std::string out =
      "policy            survived  first-failing  misses  skipped  "
      "recovered\n";
  for (const PolicyResilience& p : report.policies) {
    char survived[16];
    std::snprintf(survived, sizeof(survived), "%u/%u", p.trials_survived,
                  p.trials_total);
    char failing[16];
    if (p.failed) {
      std::snprintf(failing, sizeof(failing), "%g",
                    p.first_failing_intensity);
    } else {
      std::snprintf(failing, sizeof(failing), "-");
    }
    char line[128];
    std::snprintf(line, sizeof(line), "%-17s %8s %14s %7llu %8llu %10llu\n",
                  to_string(p.policy), survived, failing,
                  static_cast<unsigned long long>(p.deadline_misses),
                  static_cast<unsigned long long>(p.skipped_instances),
                  static_cast<unsigned long long>(p.retries_recovered));
    out += line;
  }
  return out;
}

}  // namespace ezrt::runtime
