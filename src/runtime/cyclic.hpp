// Cyclic (steady-state) execution analysis.
//
// The generated dispatcher loops the schedule table forever, adding the
// schedule period to its cycle base each wrap (§4.4.2). That is only
// correct if the single-period schedule is *repeatable*: every instance
// completes inside the period (no work spills into the next cycle) and
// phase offsets do not push a first-cycle arrival pattern that differs
// from steady state in a way the table cannot serve. This module checks
// repeatability and simulates k back-to-back periods of the dispatcher,
// re-deriving arrival/deadline times per cycle — the host-side stand-in
// for leaving the board running.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/schedule_table.hpp"
#include "spec/specification.hpp"

namespace ezrt::runtime {

struct CyclicCheck {
  bool repeatable = false;
  std::vector<std::string> reasons;  ///< why not, when !repeatable
};

/// Static repeatability test: makespan within the period and every
/// instance's deadline inside the cycle it arrives in. Phases are fine —
/// arrival k of task i in cycle j is at j*PS + ph_i + k*p_i, and the
/// table serves each cycle identically — but a phase so large that the
/// first arrival leaves its cycle is flagged.
[[nodiscard]] CyclicCheck check_repeatable(const spec::Specification& spec,
                                           const sched::ScheduleTable&
                                               table);

struct CyclicRun {
  std::uint64_t cycles = 0;
  std::uint64_t instances_completed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t context_switches = 0;
  Time total_busy = 0;
  Time total_idle = 0;
  bool ok = false;
};

/// Runs `cycles` consecutive schedule periods through the dispatcher
/// semantics, with arrivals and deadlines recomputed per cycle.
[[nodiscard]] CyclicRun simulate_cyclic(const spec::Specification& spec,
                                        const sched::ScheduleTable& table,
                                        std::uint64_t cycles);

}  // namespace ezrt::runtime
