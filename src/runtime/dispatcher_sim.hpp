// Host-side dispatcher simulation.
//
// The paper deploys its synthesized C code on microcontrollers: a timer
// interrupt fires at each schedule-table entry, a small dispatcher saves
// the preempted context, restores or starts the next task, and tasks run
// to their WCET. This simulator executes exactly those dispatcher
// semantics in discrete virtual time, standing in for the target board:
// it walks the table, accounts context switches, tracks per-instance
// progress, and reports completion/deadline outcomes — so generated
// schedules can be "run" and observed without hardware.
#pragma once

#include <string>
#include <vector>

#include "runtime/fault_injection.hpp"
#include "sched/schedule_table.hpp"
#include "spec/specification.hpp"

namespace ezrt::obs {
class Tracer;
}  // namespace ezrt::obs

namespace ezrt::runtime {

/// One dispatcher activation (timer interrupt) during the simulated run.
struct DispatchEvent {
  Time at = 0;
  TaskId task;
  std::uint32_t instance = 0;
  bool resumed = false;   ///< context restored (vs. fresh start)
  bool preempts = false;  ///< an unfinished task was running and was saved
};

struct InstanceOutcome {
  TaskId task;
  std::uint32_t instance = 0;
  Time arrival = 0;
  Time completion = 0;
  bool deadline_met = false;
  bool skipped = false;    ///< dropped by the skip-instance policy
  bool recovered = false;  ///< met its deadline via a slack retry
};

struct DispatcherRun {
  std::vector<DispatchEvent> events;
  std::vector<InstanceOutcome> outcomes;
  std::uint64_t context_saves = 0;     ///< preemptions performed
  std::uint64_t context_restores = 0;  ///< resumed segments
  Time busy_time = 0;
  Time idle_time = 0;
  /// Per-core breakdown of busy/idle time, indexed by processor value
  /// (size 1 for mono-processor tables; sums equal the totals above).
  std::vector<Time> core_busy;
  std::vector<Time> core_idle;
  /// Total bus occupancy of the replayed message transfers.
  Time bus_busy_time = 0;
  bool all_deadlines_met = false;
  std::vector<std::string> faults;  ///< dispatcher-level inconsistencies
  FaultOutcome injection;  ///< injected-fault accounting (robustness.md)

  [[nodiscard]] bool ok() const {
    return faults.empty() && all_deadlines_met;
  }
};

/// Execution-time model for the simulated run. The hard-real-time
/// default executes every instance for its full WCET; lowering
/// `min_execution_fraction` makes instances finish early (actual time
/// drawn deterministically per instance from `seed`, uniform in
/// [min_execution_fraction, 1] of WCET, at least 1 unit) — the
/// table-driven dispatcher then idles until its next timer interrupt,
/// and a resume entry for an already-finished instance is a benign
/// no-op, exactly as on target hardware.
struct DispatchSimOptions {
  double min_execution_fraction = 1.0;
  std::uint64_t seed = 1;
  /// When set, the run is mirrored onto the tracer's virtual-time track
  /// (obs::kTrackVirtual): one complete span per executed segment, plus
  /// instants for preemptions, deadline misses and dispatcher faults.
  /// Timestamps are model time units, not wall clock. Null = off.
  obs::Tracer* tracer = nullptr;
  /// Deterministic fault injection (docs/robustness.md). Null = no
  /// faults, byte-identical to the pre-fault-injection simulator.
  const FaultModel* faults = nullptr;
  /// How the dispatcher reacts when an injected fault manifests. kAbort
  /// reproduces unmitigated behavior; kFallbackOnline is handled by the
  /// campaign runner (run_campaign), not by this table walker, and falls
  /// back to kAbort semantics here.
  RecoveryPolicy recovery = RecoveryPolicy::kAbort;
};

/// Simulates one schedule period of the dispatcher executing `table`.
[[nodiscard]] DispatcherRun simulate_dispatcher(
    const spec::Specification& spec, const sched::ScheduleTable& table,
    const DispatchSimOptions& options = {});

}  // namespace ezrt::runtime
