#include "runtime/metrics.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace ezrt::runtime {

namespace {

struct InstanceSpan {
  Time start = kTimeInfinity;
  Time end = 0;
  std::uint32_t segments = 0;
};

}  // namespace

ScheduleMetrics compute_metrics(const spec::Specification& spec,
                                const sched::ScheduleTable& table) {
  ScheduleMetrics metrics;
  metrics.tasks.resize(spec.task_count());
  for (TaskId id : spec.task_ids()) {
    metrics.tasks[id.value()].task = id;
  }

  metrics.processors.resize(std::max<std::size_t>(1, spec.processor_count()));
  for (std::size_t p = 0; p < metrics.processors.size(); ++p) {
    metrics.processors[p].processor =
        ProcessorId(static_cast<std::uint32_t>(p));
  }
  for (TaskId id : spec.task_ids()) {
    const std::size_t core = spec.task(id).processor.valid()
                                 ? spec.task(id).processor.value()
                                 : 0;
    if (core < metrics.processors.size()) {
      ++metrics.processors[core].tasks;
    }
  }

  // Gather per-instance spans.
  std::map<std::pair<TaskId, std::uint32_t>, InstanceSpan> spans;
  for (const sched::ScheduleItem& item : table.items) {
    InstanceSpan& span = spans[{item.task, item.instance}];
    span.start = std::min(span.start, item.start);
    span.end = std::max(span.end, item.start + item.duration);
    ++span.segments;
    metrics.busy_time += item.duration;
    metrics.makespan = std::max(metrics.makespan, item.start + item.duration);
    if (item.task.valid() && item.task.value() < spec.task_count()) {
      const std::size_t core = spec.task(item.task).processor.valid()
                                   ? spec.task(item.task).processor.value()
                                   : 0;
      if (core < metrics.processors.size()) {
        ++metrics.processors[core].segments;
        metrics.processors[core].busy_time += item.duration;
      }
    }
  }

  // Bus contention and shared-synchronization accounting (schema v4).
  for (const sched::BusSegment& seg : table.bus_timeline) {
    ++metrics.bus_transfers;
    metrics.bus_busy_time += seg.duration;
  }
  metrics.sync_budget = table.sync_budget;
  metrics.sync_high_water = table.sync_high_water;

  // Fold into per-task aggregates.
  std::vector<Time> min_offset(spec.task_count(), kTimeInfinity);
  std::vector<Time> max_offset(spec.task_count(), 0);
  std::vector<Time> min_slack(spec.task_count(), kTimeInfinity);
  std::vector<double> response_sum(spec.task_count(), 0.0);

  for (const auto& [key, span] : spans) {
    const auto& [task_id, instance] = key;
    const spec::Task& task = spec.task(task_id);
    TaskMetrics& tm = metrics.tasks[task_id.value()];
    const Time arrival =
        task.timing.phase + static_cast<Time>(instance) * task.timing.period;
    const Time response = span.end - arrival;
    const Time offset = span.start - arrival;
    const Time deadline = arrival + task.timing.deadline;
    const Time slack = deadline >= span.end ? deadline - span.end : 0;

    ++tm.instances;
    tm.worst_response = std::max(tm.worst_response, response);
    tm.best_response = tm.instances == 1
                           ? response
                           : std::min(tm.best_response, response);
    response_sum[task_id.value()] += static_cast<double>(response);
    min_offset[task_id.value()] =
        std::min(min_offset[task_id.value()], offset);
    max_offset[task_id.value()] =
        std::max(max_offset[task_id.value()], offset);
    min_slack[task_id.value()] = std::min(min_slack[task_id.value()], slack);
    tm.preemptions += span.segments - 1;
    tm.energy += static_cast<std::uint64_t>(task.energy) *
                 task.timing.computation;
  }

  for (TaskId id : spec.task_ids()) {
    TaskMetrics& tm = metrics.tasks[id.value()];
    if (tm.instances > 0) {
      tm.mean_response = response_sum[id.value()] / tm.instances;
      tm.start_jitter = max_offset[id.value()] - min_offset[id.value()];
      tm.worst_slack = min_slack[id.value()];
    }
    metrics.total_preemptions += tm.preemptions;
    metrics.total_energy += tm.energy;
  }

  if (table.schedule_period > 0) {
    // Capacity is schedule_period per processor; busy time is summed
    // across processors, so idle/utilization are system-wide.
    const Time capacity =
        table.schedule_period * std::max<std::size_t>(1,
                                                      spec.processor_count());
    metrics.idle_time =
        capacity >= metrics.busy_time ? capacity - metrics.busy_time : 0;
    metrics.utilization = static_cast<double>(metrics.busy_time) /
                          static_cast<double>(capacity);
    const auto period = static_cast<double>(table.schedule_period);
    for (ProcessorMetrics& proc : metrics.processors) {
      proc.idle_time = table.schedule_period >= proc.busy_time
                           ? table.schedule_period - proc.busy_time
                           : 0;
      proc.utilization = static_cast<double>(proc.busy_time) / period;
    }
    metrics.bus_utilization =
        static_cast<double>(metrics.bus_busy_time) / period;
  }
  return metrics;
}

std::string format_metrics(const spec::Specification& spec,
                           const ScheduleMetrics& metrics) {
  std::ostringstream os;
  os << "task        inst  resp[best/mean/worst]  jitter  slack  preempt"
        "  energy\n";
  for (const TaskMetrics& tm : metrics.tasks) {
    const spec::Task& task = spec.task(tm.task);
    os << task.name;
    for (std::size_t i = task.name.size(); i < 12; ++i) {
      os << ' ';
    }
    char line[96];
    std::snprintf(line, sizeof(line),
                  "%4u  %6llu/%6.1f/%6llu  %6llu  %5llu  %7u  %6llu\n",
                  tm.instances,
                  static_cast<unsigned long long>(tm.best_response),
                  tm.mean_response,
                  static_cast<unsigned long long>(tm.worst_response),
                  static_cast<unsigned long long>(tm.start_jitter),
                  static_cast<unsigned long long>(tm.worst_slack),
                  tm.preemptions,
                  static_cast<unsigned long long>(tm.energy));
    os << line;
  }
  char totals[128];
  std::snprintf(totals, sizeof(totals),
                "makespan %llu, busy %llu, idle %llu, U = %.3f, "
                "%u preemptions, energy %llu\n",
                static_cast<unsigned long long>(metrics.makespan),
                static_cast<unsigned long long>(metrics.busy_time),
                static_cast<unsigned long long>(metrics.idle_time),
                metrics.utilization, metrics.total_preemptions,
                static_cast<unsigned long long>(metrics.total_energy));
  os << totals;
  // Per-core and bus breakdown, only for multi-processor models so the
  // mono-processor report stays byte-identical.
  if (metrics.processors.size() > 1) {
    for (const ProcessorMetrics& proc : metrics.processors) {
      const std::string name =
          proc.processor.value() < spec.processor_count()
              ? spec.processor(proc.processor).name
              : "cpu" + std::to_string(proc.processor.value());
      char row[96];
      std::snprintf(row, sizeof(row),
                    "%-8s busy %llu, idle %llu, U = %.3f "
                    "(%u tasks, %u dispatch points)\n",
                    name.c_str(),
                    static_cast<unsigned long long>(proc.busy_time),
                    static_cast<unsigned long long>(proc.idle_time),
                    proc.utilization, proc.tasks, proc.segments);
      os << row;
    }
    if (metrics.bus_transfers > 0) {
      char row[96];
      std::snprintf(row, sizeof(row),
                    "bus      %u transfers, busy %llu, U = %.3f\n",
                    metrics.bus_transfers,
                    static_cast<unsigned long long>(metrics.bus_busy_time),
                    metrics.bus_utilization);
      os << row;
    }
    if (metrics.sync_budget > 0) {
      os << "sync     high-water " << metrics.sync_high_water << " of K="
         << metrics.sync_budget << "\n";
    }
  }
  return os.str();
}

std::string render_gantt(const spec::Specification& spec,
                         const sched::ScheduleTable& table, Time horizon,
                         std::size_t width) {
  if (horizon == 0) {
    horizon = table.schedule_period > 0 ? table.schedule_period
                                        : table.makespan;
  }
  if (horizon == 0 || width == 0) {
    return "(empty schedule)\n";
  }
  // Cells per time unit (<= 1): scale so the horizon fits in `width`.
  const Time units_per_cell = std::max<Time>(1, (horizon + width - 1) /
                                                    static_cast<Time>(width));
  const std::size_t cells =
      static_cast<std::size_t>((horizon + units_per_cell - 1) /
                               units_per_cell);

  std::size_t label = 0;
  for (TaskId id : spec.task_ids()) {
    label = std::max(label, spec.task(id).name.size());
  }
  label = std::min<std::size_t>(label, 12);

  std::ostringstream os;
  os << "time 0.." << horizon << ", one cell = " << units_per_cell
     << " unit(s)\n";
  for (TaskId id : spec.task_ids()) {
    std::string row(cells, '.');
    for (const sched::ScheduleItem& item : table.items) {
      if (item.task != id || item.start >= horizon) {
        continue;
      }
      const Time end = std::min<Time>(item.start + item.duration, horizon);
      for (Time t = item.start; t < end; ++t) {
        row[static_cast<std::size_t>(t / units_per_cell)] = '#';
      }
    }
    // Period boundaries (only meaningful when they land on idle cells).
    const spec::Task& task = spec.task(id);
    for (Time boundary = task.timing.phase; boundary < horizon;
         boundary += task.timing.period) {
      std::size_t cell = static_cast<std::size_t>(boundary / units_per_cell);
      if (cell < cells && row[cell] == '.') {
        row[cell] = '|';
      }
    }
    std::string name = task.name.substr(0, label);
    name.resize(label, ' ');
    os << name << " " << row << "\n";
  }
  return os.str();
}

}  // namespace ezrt::runtime
