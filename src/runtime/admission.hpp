// Fast analytic schedulability pre-checks.
//
// Pre-runtime synthesis is exhaustive and can be expensive; classic
// real-time scheduling theory gives cheap *analytic* bounds that decide
// many cases instantly. The tool runs these before the search to warn
// early ("this set cannot be schedulable on one processor") or to skip
// the search entirely when a sufficient test already passes for the
// chosen policy class. Implemented per processor:
//
//   * utilization bound          U = sum c/p <= 1          (necessary)
//   * EDF density test           sum c/min(d,p) <= 1       (sufficient
//     for preemptive EDF with constrained deadlines)
//   * Liu & Layland RM bound     U <= n(2^{1/n}-1)         (sufficient
//     for preemptive RM with implicit deadlines)
//   * processor demand criterion h(t) <= t at every absolute deadline in
//     the hyper-period                                     (exact for
//     preemptive EDF; necessary for *any* policy, so a violation proves
//     the pre-runtime search will fail too)
//   * non-preemptive blocking    r_i = c_i + B_i + I must fit d_i, with
//     B_i the longest lower-urgency non-preemptive WCET    (necessary-
//     style screen: reported as a warning, not a verdict)
//
// Verdicts are tri-state: a test either proves schedulability (for its
// policy class), proves infeasibility (when the condition is necessary
// for every policy), or is inconclusive.
#pragma once

#include <string>
#include <vector>

#include "spec/specification.hpp"

namespace ezrt::runtime {

enum class AdmissionVerdict : std::uint8_t {
  kSchedulable,    ///< proven schedulable for the test's policy class
  kInfeasible,     ///< proven unschedulable on this platform (any policy)
  kInconclusive,   ///< the test cannot decide; run the synthesis
};

[[nodiscard]] const char* to_string(AdmissionVerdict verdict);

struct AdmissionCheck {
  std::string name;        ///< e.g. "utilization bound (cpu0)"
  AdmissionVerdict verdict = AdmissionVerdict::kInconclusive;
  std::string detail;      ///< numbers behind the verdict
};

struct AdmissionReport {
  std::vector<AdmissionCheck> checks;
  /// Overall: kInfeasible if any necessary test failed; kSchedulable if
  /// some sufficient test passed (for preemptive EDF — the strongest
  /// class analyzed) and none failed; kInconclusive otherwise.
  AdmissionVerdict overall = AdmissionVerdict::kInconclusive;
};

/// Runs every applicable test. The specification must validate.
[[nodiscard]] AdmissionReport check_admission(
    const spec::Specification& spec);

/// Fixed-width rendering for the CLI.
[[nodiscard]] std::string format_admission(const AdmissionReport& report);

}  // namespace ezrt::runtime
