#include "runtime/latency.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace ezrt::runtime {

namespace {

/// Dependency edges: precedence plus message sender->receiver.
[[nodiscard]] std::vector<std::vector<TaskId>> successor_lists(
    const spec::Specification& spec) {
  std::vector<std::vector<TaskId>> succ(spec.task_count());
  auto add_edge = [&succ](TaskId from, TaskId to) {
    std::vector<TaskId>& out = succ[from.value()];
    if (std::find(out.begin(), out.end(), to) == out.end()) {
      out.push_back(to);
    }
  };
  for (TaskId id : spec.task_ids()) {
    for (TaskId to : spec.task(id).precedes) {
      add_edge(id, to);
    }
  }
  for (MessageId id : spec.message_ids()) {
    const spec::Message& m = spec.message(id);
    if (m.sender.valid() && m.receiver.valid()) {
      add_edge(m.sender, m.receiver);
    }
  }
  return succ;
}

}  // namespace

std::vector<Chain> enumerate_chains(const spec::Specification& spec) {
  const std::vector<std::vector<TaskId>> succ = successor_lists(spec);
  std::vector<bool> has_predecessor(spec.task_count(), false);
  bool any_edge = false;
  for (const std::vector<TaskId>& out : succ) {
    for (TaskId to : out) {
      has_predecessor[to.value()] = true;
      any_edge = true;
    }
  }
  std::vector<Chain> chains;
  if (!any_edge) {
    return chains;
  }

  // DFS from every source, emitting each maximal path. The precedence
  // graph is acyclic (validated), so this terminates.
  for (TaskId source : spec.task_ids()) {
    if (has_predecessor[source.value()]) {
      continue;
    }
    if (succ[source.value()].empty()) {
      continue;  // isolated task: not a chain
    }
    std::vector<std::pair<TaskId, std::size_t>> stack{{source, 0}};
    std::vector<TaskId> path{source};
    while (!stack.empty()) {
      auto& [node, edge] = stack.back();
      const std::vector<TaskId>& next = succ[node.value()];
      if (next.empty()) {
        // Sink: emit the current path as a maximal chain.
        Chain chain;
        chain.tasks = path;
        chain.rate_matched = true;
        for (TaskId t : path) {
          if (spec.task(t).timing.period !=
              spec.task(path.front()).timing.period) {
            chain.rate_matched = false;
          }
        }
        chains.push_back(std::move(chain));
        stack.pop_back();
        path.pop_back();
        continue;
      }
      if (edge == next.size()) {
        stack.pop_back();
        path.pop_back();
        continue;
      }
      const TaskId child = next[edge++];
      stack.emplace_back(child, 0);
      path.push_back(child);
    }
  }
  return chains;
}

std::vector<ChainLatency> analyze_latency(const spec::Specification& spec,
                                          const sched::ScheduleTable&
                                              table) {
  // Per (task, instance): completion time and arrival.
  std::map<std::pair<TaskId, std::uint32_t>, Time> completion;
  for (const sched::ScheduleItem& item : table.items) {
    Time& end = completion[{item.task, item.instance}];
    end = std::max(end, item.start + item.duration);
  }

  std::vector<ChainLatency> out;
  for (Chain& chain : enumerate_chains(spec)) {
    if (!chain.rate_matched) {
      ChainLatency skipped;
      skipped.chain = std::move(chain);
      out.push_back(std::move(skipped));
      continue;
    }
    ChainLatency latency;
    const TaskId source = chain.tasks.front();
    const TaskId sink = chain.tasks.back();
    const spec::TimingConstraints& src = spec.task(source).timing;
    double sum = 0.0;
    for (std::uint32_t k = 0;; ++k) {
      const auto it = completion.find({sink, k});
      if (it == completion.end()) {
        break;
      }
      const Time arrival = src.phase + static_cast<Time>(k) * src.period;
      const Time value = it->second > arrival ? it->second - arrival : 0;
      latency.worst = std::max(latency.worst, value);
      latency.best =
          latency.instances == 0 ? value : std::min(latency.best, value);
      sum += static_cast<double>(value);
      ++latency.instances;
    }
    if (latency.instances > 0) {
      latency.mean = sum / latency.instances;
    }
    latency.chain = std::move(chain);
    out.push_back(std::move(latency));
  }
  return out;
}

std::string format_latency(const spec::Specification& spec,
                           const std::vector<ChainLatency>& latencies) {
  std::ostringstream os;
  if (latencies.empty()) {
    os << "(no cause-effect chains in the specification)\n";
    return os.str();
  }
  for (const ChainLatency& latency : latencies) {
    bool first = true;
    for (TaskId t : latency.chain.tasks) {
      os << (first ? "" : " -> ") << spec.task(t).name;
      first = false;
    }
    if (!latency.chain.rate_matched) {
      os << ": (rates differ; per-instance latency undefined)\n";
      continue;
    }
    os << ": worst " << latency.worst << ", best " << latency.best
       << ", mean " << latency.mean << " over " << latency.instances
       << " instance(s)\n";
  }
  return os.str();
}

}  // namespace ezrt::runtime
