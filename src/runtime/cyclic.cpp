#include "runtime/cyclic.hpp"

#include <algorithm>
#include <map>

#include "runtime/dispatcher_sim.hpp"

namespace ezrt::runtime {

CyclicCheck check_repeatable(const spec::Specification& spec,
                             const sched::ScheduleTable& table) {
  CyclicCheck check;
  auto reason = [&check](std::string message) {
    check.reasons.push_back(std::move(message));
  };

  const Time ps = table.schedule_period;
  if (ps == 0) {
    reason("schedule period is zero");
    check.repeatable = false;
    return check;
  }
  if (table.makespan > ps) {
    reason("makespan " + std::to_string(table.makespan) +
           " spills past the schedule period " + std::to_string(ps));
  }
  for (TaskId id : spec.task_ids()) {
    const spec::TimingConstraints& c = spec.task(id).timing;
    if (c.phase + c.deadline > ps && ps % c.period == 0 &&
        c.phase + (ps / c.period - 1) * c.period + c.deadline > ps) {
      reason("task '" + spec.task(id).name +
             "': last instance's deadline leaves the cycle (phase " +
             std::to_string(c.phase) + ")");
    }
  }
  check.repeatable = check.reasons.empty();
  return check;
}

CyclicRun simulate_cyclic(const spec::Specification& spec,
                          const sched::ScheduleTable& table,
                          std::uint64_t cycles) {
  CyclicRun run;
  run.cycles = cycles;
  run.ok = true;

  // The dispatcher serves every cycle from the same table with a shifted
  // cycle base; simulating cycle-by-cycle with the single-period
  // simulator is exact *given* repeatability (no carry-over work), which
  // the caller should have established via check_repeatable.
  for (std::uint64_t cycle = 0; cycle < cycles; ++cycle) {
    const DispatcherRun one = simulate_dispatcher(spec, table);
    run.instances_completed += one.outcomes.size();
    for (const InstanceOutcome& outcome : one.outcomes) {
      run.deadline_misses += outcome.deadline_met ? 0 : 1;
    }
    run.context_switches += one.context_saves + one.context_restores;
    run.total_busy += one.busy_time;
    run.total_idle += one.idle_time;
    if (!one.ok()) {
      run.ok = false;
    }
  }
  // Idle between the makespan and the period boundary belongs to every
  // cycle (the single-period simulator stops at the last segment's end).
  if (table.schedule_period > table.makespan) {
    run.total_idle += (table.schedule_period - table.makespan) * cycles;
  }
  run.ok = run.ok && run.deadline_misses == 0;
  return run;
}

}  // namespace ezrt::runtime
