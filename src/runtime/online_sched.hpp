// On-line scheduling baselines.
//
// The paper's contribution is *pre-runtime* schedule synthesis; the natural
// baselines are the classic run-time policies: preemptive EDF and
// fixed-priority (rate-/deadline-monotonic). These simulators run a task
// set over one schedule period in discrete time and report schedulability
// and overhead, so the benchmark harness can compare "who wins, by what
// factor" against the synthesized schedules — the comparison the EHRT
// literature (Mok's thesis, Xu & Parnas) frames pre-runtime scheduling
// around. Baselines handle independent periodic task sets; precedence and
// exclusion relations are the pre-runtime method's home turf and are not
// modeled here (documented substitution in DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "spec/specification.hpp"

namespace ezrt::runtime {

enum class OnlinePolicy : std::uint8_t {
  kEdf,                ///< earliest absolute deadline first, preemptive
  kDeadlineMonotonic,  ///< fixed priority by relative deadline, preemptive
  kRateMonotonic,      ///< fixed priority by period, preemptive
  kEdfNonPreemptive,   ///< EDF, but jobs run to completion once started
};

[[nodiscard]] const char* to_string(OnlinePolicy policy);

struct OnlineResult {
  bool schedulable = false;       ///< no job missed its deadline
  std::uint64_t deadline_misses = 0;
  std::uint64_t preemptions = 0;  ///< context saves of unfinished jobs
  std::uint64_t dispatches = 0;   ///< scheduler decisions that switched jobs
  Time busy_time = 0;
  Time idle_time = 0;
  Time max_lateness = 0;          ///< worst completion - deadline over jobs
};

/// Simulates one hyper-period of `spec`'s task set (tasks treated as
/// independent) under the given policy with unit time steps.
[[nodiscard]] OnlineResult simulate_online(const spec::Specification& spec,
                                           OnlinePolicy policy);

/// One explicit job for the EDF tail: released work with an absolute
/// deadline, decoupled from the periodic release pattern so callers can
/// hand over mid-flight work (fault-injection fallback,
/// docs/robustness.md).
struct OnlineJob {
  TaskId task;
  std::uint32_t instance = 0;
  Time release = 0;
  Time remaining = 0;
  Time absolute_deadline = 0;
};

struct OnlineTailResult {
  std::uint64_t deadline_misses = 0;
  std::uint64_t preemptions = 0;
  Time busy_time = 0;
  Time idle_time = 0;
};

/// Preemptive EDF over an explicit job set starting at `from`. Jobs with
/// an earlier release become ready at `from`; a job whose deadline passes
/// with work left is dropped and counted once. Runs until every job has
/// completed or missed (bounded by the latest deadline), so `horizon` only
/// caps the idle-time accounting. Deterministic: ties break on
/// (deadline, task, instance).
[[nodiscard]] OnlineTailResult simulate_edf_tail(std::vector<OnlineJob> jobs,
                                                 Time from, Time horizon);

}  // namespace ezrt::runtime
