// WCET sensitivity analysis.
//
// Hard real-time budgets are estimates; a designer wants to know how much
// headroom a synthesized system has before it stops being schedulable.
// This module answers two questions by re-running the synthesis under
// perturbed specifications:
//
//   * max_uniform_scaling — the largest factor (found by binary search on
//     a permille grid) by which *every* WCET can grow with the task set
//     remaining schedulable;
//   * per_task_headroom   — for each task, the largest absolute WCET
//     increase (binary search) tolerable while all other tasks keep
//     their budgets.
//
// Both use the given scheduler options, so the answers are relative to
// the chosen search mode (the paper's pruned search by default).
#pragma once

#include <vector>

#include "sched/dfs.hpp"
#include "spec/specification.hpp"

namespace ezrt::runtime {

struct SensitivityOptions {
  sched::SchedulerOptions scheduler;
  /// Resolution of the uniform-scaling search, in permille (1000 = x1.0).
  std::uint32_t scaling_resolution_permille = 25;
  /// Upper bound for the scaling search (x4 by default).
  std::uint32_t scaling_max_permille = 4000;
};

struct TaskHeadroom {
  TaskId task;
  Time extra_wcet = 0;  ///< largest tolerable absolute WCET increase
};

/// Feasibility of a candidate specification under the configured search:
/// builds the TPN and runs the synthesis. Validation failures (e.g. a
/// perturbed WCET that no longer fits its deadline) count as
/// unschedulable. This is the re-run primitive behind both analyses here
/// and the explain layer's delta-debugging probes (src/obs/explain.cpp).
[[nodiscard]] bool schedulable(const spec::Specification& candidate,
                               const sched::SchedulerOptions& options);

struct SensitivityReport {
  bool baseline_schedulable = false;
  /// Largest schedulable uniform scaling, in permille (>= 1000 when the
  /// baseline is schedulable; 0 otherwise).
  std::uint32_t max_scaling_permille = 0;
  std::vector<TaskHeadroom> headroom;  ///< one entry per task
};

/// Runs the analysis. Cost: O(log(range)) schedule syntheses for the
/// scaling plus O(tasks * log(range)) for the headrooms — intended for
/// design-time use.
[[nodiscard]] SensitivityReport analyze_sensitivity(
    const spec::Specification& spec, const SensitivityOptions& options = {});

}  // namespace ezrt::runtime
