#include "runtime/admission.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

namespace ezrt::runtime {

namespace {

using spec::SchedulingType;
using spec::Specification;

/// Tasks assigned to one processor.
[[nodiscard]] std::vector<TaskId> tasks_on(const Specification& spec,
                                           ProcessorId processor) {
  std::vector<TaskId> out;
  for (TaskId id : spec.task_ids()) {
    if (spec.task(id).processor == processor) {
      out.push_back(id);
    }
  }
  return out;
}

/// Processor demand h(t) = sum over tasks of
/// max(0, floor((t - d_i - ph_i)/p_i) + 1) * c_i for absolute time t.
[[nodiscard]] double demand(const Specification& spec,
                            const std::vector<TaskId>& tasks, double t) {
  double h = 0.0;
  for (TaskId id : tasks) {
    const spec::TimingConstraints& c = spec.task(id).timing;
    const double first = static_cast<double>(c.phase + c.deadline);
    if (t < first) {
      continue;
    }
    const double jobs =
        std::floor((t - first) / static_cast<double>(c.period)) + 1.0;
    h += jobs * static_cast<double>(c.computation);
  }
  return h;
}

void check_processor(const Specification& spec, ProcessorId processor,
                     AdmissionReport& report) {
  const std::vector<TaskId> tasks = tasks_on(spec, processor);
  if (tasks.empty()) {
    return;
  }
  const std::string cpu = spec.processor(processor).name;

  // Utilization (necessary for every policy on one processor).
  double utilization = 0.0;
  double density = 0.0;
  bool implicit_deadlines = true;
  bool all_preemptive = true;
  for (TaskId id : tasks) {
    const spec::TimingConstraints& c = spec.task(id).timing;
    utilization += static_cast<double>(c.computation) /
                   static_cast<double>(c.period);
    density += static_cast<double>(c.computation) /
               static_cast<double>(std::min(c.deadline, c.period));
    implicit_deadlines &= c.deadline == c.period;
    all_preemptive &=
        spec.task(id).scheduling == SchedulingType::kPreemptive;
  }
  {
    AdmissionCheck check;
    check.name = "utilization bound (" + cpu + ")";
    std::ostringstream os;
    os << "U = " << utilization;
    check.detail = os.str();
    check.verdict = utilization > 1.0 + 1e-12
                        ? AdmissionVerdict::kInfeasible
                        : AdmissionVerdict::kInconclusive;
    report.checks.push_back(std::move(check));
  }

  // EDF density (sufficient for preemptive EDF, constrained deadlines).
  {
    AdmissionCheck check;
    check.name = "EDF density test (" + cpu + ")";
    std::ostringstream os;
    os << "sum c/min(d,p) = " << density
       << (all_preemptive ? "" : " [set is not fully preemptive]");
    check.detail = os.str();
    check.verdict = (density <= 1.0 + 1e-12 && all_preemptive)
                        ? AdmissionVerdict::kSchedulable
                        : AdmissionVerdict::kInconclusive;
    report.checks.push_back(std::move(check));
  }

  // Liu & Layland bound (sufficient for preemptive RM, implicit
  // deadlines, no phases needed — it is phase-independent).
  {
    const double n = static_cast<double>(tasks.size());
    const double bound = n * (std::pow(2.0, 1.0 / n) - 1.0);
    AdmissionCheck check;
    check.name = "Liu&Layland RM bound (" + cpu + ")";
    std::ostringstream os;
    os << "U = " << utilization << " vs n(2^{1/n}-1) = " << bound
       << (implicit_deadlines ? "" : " [deadlines not implicit]");
    check.detail = os.str();
    check.verdict = (utilization <= bound && implicit_deadlines &&
                     all_preemptive)
                        ? AdmissionVerdict::kSchedulable
                        : AdmissionVerdict::kInconclusive;
    report.checks.push_back(std::move(check));
  }

  // Processor demand criterion at every absolute deadline within the
  // hyper-period (+ max phase): exact for preemptive EDF; *necessary*
  // for any policy (the work must fit no matter who schedules it).
  if (auto ps = spec.schedule_period(); ps.ok()) {
    std::set<double> points;
    for (TaskId id : tasks) {
      const spec::TimingConstraints& c = spec.task(id).timing;
      for (Time k = 0; k * c.period < ps.value(); ++k) {
        points.insert(static_cast<double>(c.phase + k * c.period +
                                          c.deadline));
      }
    }
    AdmissionCheck check;
    check.name = "processor demand criterion (" + cpu + ")";
    check.verdict = all_preemptive ? AdmissionVerdict::kSchedulable
                                   : AdmissionVerdict::kInconclusive;
    check.detail = "h(t) <= t at " + std::to_string(points.size()) +
                   " deadline points";
    for (double t : points) {
      const double h = demand(spec, tasks, t);
      if (h > t + 1e-9) {
        std::ostringstream os;
        os << "h(" << t << ") = " << h << " > " << t;
        check.detail = os.str();
        check.verdict = AdmissionVerdict::kInfeasible;
        break;
      }
    }
    report.checks.push_back(std::move(check));
  }

  // Non-preemptive blocking screen: a task with a tight window can be
  // blocked by any non-preemptive task's full WCET. Warning-grade.
  for (TaskId id : tasks) {
    const spec::TimingConstraints& c = spec.task(id).timing;
    Time blocking = 0;
    for (TaskId other : tasks) {
      if (other == id || spec.task(other).scheduling !=
                             SchedulingType::kNonPreemptive) {
        continue;
      }
      // Only lower-urgency tasks block (a higher-urgency one would have
      // been scheduled first by the synthesis anyway).
      if (spec.task(other).timing.deadline >= c.deadline) {
        blocking =
            std::max(blocking, spec.task(other).timing.computation);
      }
    }
    if (blocking != 0 &&
        c.release + c.computation + blocking > c.deadline) {
      AdmissionCheck check;
      check.name = "blocking screen: " + spec.task(id).name;
      std::ostringstream os;
      os << "r + c + B = " << c.release + c.computation + blocking
         << " > d = " << c.deadline
         << " (worst-case lower-urgency blocking " << blocking << ")";
      check.detail = os.str();
      // Not a proof of infeasibility: pre-runtime synthesis can order
      // instances so the blocker never runs right before the arrival.
      check.verdict = AdmissionVerdict::kInconclusive;
      report.checks.push_back(std::move(check));
    }
  }
}

}  // namespace

const char* to_string(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::kSchedulable:
      return "schedulable";
    case AdmissionVerdict::kInfeasible:
      return "infeasible";
    case AdmissionVerdict::kInconclusive:
      return "inconclusive";
  }
  return "unknown";
}

AdmissionReport check_admission(const Specification& spec) {
  AdmissionReport report;
  for (ProcessorId processor : spec.processor_ids()) {
    check_processor(spec, processor, report);
  }

  bool any_infeasible = false;
  bool any_sufficient = false;
  for (const AdmissionCheck& check : report.checks) {
    any_infeasible |= check.verdict == AdmissionVerdict::kInfeasible;
    any_sufficient |= check.verdict == AdmissionVerdict::kSchedulable;
  }
  if (any_infeasible) {
    report.overall = AdmissionVerdict::kInfeasible;
  } else if (any_sufficient) {
    report.overall = AdmissionVerdict::kSchedulable;
  }
  return report;
}

std::string format_admission(const AdmissionReport& report) {
  std::ostringstream os;
  for (const AdmissionCheck& check : report.checks) {
    os << "  [" << to_string(check.verdict) << "] " << check.name << ": "
       << check.detail << "\n";
  }
  os << "  overall: " << to_string(report.overall) << "\n";
  return os.str();
}

}  // namespace ezrt::runtime
