// Independent schedule-table validation.
//
// The validator re-derives every timing contract from the *specification*
// (not from the Petri net), so it is an independent oracle for the
// scheduler: any table produced by the DFS must pass. Checked per table:
//   * completeness — every task contributes exactly N(t_i) instances;
//   * WCET budgets — each instance's segments sum to c_i;
//   * release windows — no instance starts before arrival + r_i;
//   * deadlines — every instance completes by arrival + d_i;
//   * processor exclusivity — segments on one processor never overlap;
//   * non-preemptive atomicity — single segment, no resume flags;
//   * resume flags — false on first segments, true on continuations;
//   * precedence — the k-th start of a successor never precedes the k-th
//     finish of its predecessor;
//   * exclusion — instance execution spans of excluded tasks are disjoint
//     (a task holds its locks from first dispatch to completion);
//   * core assignment — a row naming a processor names its task's core;
//   * bus serialization — transfers on one bus never overlap;
//   * cross-core message precedence — the k-th transfer starts after the
//     k-th sender finish and completes before the k-th receiver start;
//   * sync budget — the high-water mark of concurrently held
//     synchronization resources fits the declared K pool.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule_table.hpp"
#include "spec/specification.hpp"

namespace ezrt::runtime {

/// Outcome of validating one schedule table.
struct ValidationReport {
  std::vector<std::string> violations;
  std::uint64_t instances_checked = 0;
  std::uint64_t segments_checked = 0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// All violations joined for test diagnostics.
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] ValidationReport validate_schedule(
    const spec::Specification& spec, const sched::ScheduleTable& table);

}  // namespace ezrt::runtime
