// Deterministic fault injection and recovery (docs/robustness.md).
//
// The paper's pre-runtime schedules assume WCETs hold and timers are
// exact. This module stress-tests a synthesized table against the ways
// deployed systems break those assumptions — WCET overruns, timer/release
// drift, interference bursts stealing cycles, transient task failures —
// and measures how far each recovery strategy stretches before deadlines
// fall:
//
//   * abort            — today's behavior: no mitigation, any manifested
//                        fault plays out as a miss or dispatcher
//                        inconsistency (the hard-real-time stance);
//   * skip-instance    — the dispatcher abandons an unsalvageable
//                        instance cleanly (controlled degradation: the
//                        skip is reported, later instances are safe);
//   * retry-next-slot  — failed or unfinished work re-executes in the
//                        table's idle slack before its deadline;
//   * fallback-online  — on the first fault the dispatcher hands the
//                        hyper-period to the preemptive EDF scheduler.
//
// Every draw derives from (seed, task name, instance, fault kind) via
// hash_mix, so a fault plan is a pure function of its inputs: identical
// across runs, thread counts and telemetry configurations — which is what
// makes the campaign reports byte-comparable in CI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.hpp"
#include "sched/schedule_table.hpp"
#include "spec/specification.hpp"

namespace ezrt::base {
class CancelToken;
}  // namespace ezrt::base

namespace ezrt::obs {
class Tracer;
}  // namespace ezrt::obs

namespace ezrt::runtime {

enum class FaultKind : std::uint8_t {
  kWcetOverrun,        ///< an instance needs more than its declared WCET
  kReleaseDrift,       ///< the start timer fires late
  kInterferenceBurst,  ///< an ISR/DMA burst steals execution time
  kTransientFailure,   ///< the instance completes but its result is bad
};

inline constexpr std::size_t kFaultKindCount = 4;

[[nodiscard]] const char* to_string(FaultKind kind);

/// One fault class to inject, before intensity scaling. `probability` is
/// the per-instance injection chance; magnitudes are `scale` of the
/// task's WCET plus `absolute` time units (transient failures carry no
/// magnitude).
struct FaultSpec {
  FaultKind kind = FaultKind::kWcetOverrun;
  double probability = 0.0;
  double scale = 0.25;
  Time absolute = 0;
};

/// Parses a campaign fault specification such as
/// "wcet:0.3,drift:0.2,burst:0.1,fail:0.1". Each entry is
/// kind:probability[:scale[:absolute]] with kinds wcet|drift|burst|fail.
[[nodiscard]] Result<std::vector<FaultSpec>> parse_fault_specs(
    std::string_view text);

/// A materialized fault hitting one task instance.
struct InjectedFault {
  FaultKind kind = FaultKind::kWcetOverrun;
  TaskId task;
  std::uint32_t instance = 0;
  Time magnitude = 0;  ///< extra WCET / drift / burst units; 0 = transient
};

/// The full fault schedule for one trial: a pure function of
/// (spec, fault specs, seed, intensity). Intensity multiplies both the
/// injection probability (clamped to 1) and the magnitude.
struct FaultPlan {
  std::uint64_t seed = 1;
  double intensity = 1.0;
  std::vector<InjectedFault> faults;  ///< sorted by (task, instance, kind)
};

[[nodiscard]] FaultPlan materialize_faults(
    const spec::Specification& spec, const std::vector<FaultSpec>& specs,
    std::uint64_t seed, double intensity);

enum class RecoveryPolicy : std::uint8_t {
  kAbort,
  kSkipInstance,
  kRetryNextSlot,
  kFallbackOnline,
};

[[nodiscard]] const char* to_string(RecoveryPolicy policy);
[[nodiscard]] Result<RecoveryPolicy> parse_recovery_policy(
    std::string_view text);

/// Read-only lookup facade the dispatcher simulator consults per
/// schedule-table entry.
class FaultModel {
 public:
  explicit FaultModel(FaultPlan plan);

  /// The fault of `kind` injected into (task, instance), or null.
  [[nodiscard]] const InjectedFault* find(TaskId task,
                                          std::uint32_t instance,
                                          FaultKind kind) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  std::vector<std::uint32_t> order_;  ///< indices sorted for binary search
};

/// What the faults did to one simulated run, and what the recovery policy
/// salvaged. `deadline_misses` counts unmitigated instance failures —
/// skipped instances are controlled degradation and counted separately.
struct FaultOutcome {
  std::uint64_t injected = 0;  ///< faults that manifested during the run
  std::uint64_t wcet_overruns = 0;
  std::uint64_t release_drifts = 0;
  std::uint64_t interference_bursts = 0;
  std::uint64_t transient_failures = 0;
  std::uint64_t skipped_instances = 0;
  std::uint64_t retries = 0;
  std::uint64_t retries_recovered = 0;
  std::uint64_t deadline_misses = 0;
  bool fallback_engaged = false;
};

// -- Campaign -------------------------------------------------------------

struct CampaignOptions {
  std::vector<double> intensities = {0.25, 0.5, 1.0, 2.0, 4.0};
  std::uint32_t trials = 3;
  std::uint64_t seed = 1;
  std::vector<RecoveryPolicy> policies = {
      RecoveryPolicy::kAbort, RecoveryPolicy::kSkipInstance,
      RecoveryPolicy::kRetryNextSlot, RecoveryPolicy::kFallbackOnline};
  /// Fault/recovery instants land on the tracer's virtual track for the
  /// first trial of each (policy, intensity) cell. Null = off. The tracer
  /// never influences the report (determinism contract).
  obs::Tracer* tracer = nullptr;
  /// Polled between trials; a cancelled campaign returns the rows
  /// finished so far with `cancelled` set.
  const base::CancelToken* cancel = nullptr;
};

/// One (policy, intensity, trial) cell of the sweep.
struct TrialOutcome {
  RecoveryPolicy policy = RecoveryPolicy::kAbort;
  double intensity = 1.0;
  std::uint32_t trial = 0;
  std::uint64_t faults_planned = 0;  ///< plan size (manifested <= planned)
  FaultOutcome outcome;
  bool survived = false;  ///< zero unmitigated misses, no inconsistencies
};

/// Per-policy aggregate over the whole sweep.
struct PolicyResilience {
  RecoveryPolicy policy = RecoveryPolicy::kAbort;
  std::uint32_t trials_total = 0;
  std::uint32_t trials_survived = 0;
  bool failed = false;  ///< at least one trial did not survive
  double first_failing_intensity = 0.0;  ///< meaningful iff `failed`
  std::uint64_t faults_planned = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t skipped_instances = 0;
  std::uint64_t retries_recovered = 0;
};

struct ResilienceReport {
  std::string spec_name;
  std::uint64_t seed = 1;
  std::uint32_t trials = 0;
  std::vector<FaultSpec> fault_specs;
  std::vector<double> intensities;
  std::vector<TrialOutcome> rows;
  std::vector<PolicyResilience> policies;
  bool cancelled = false;
};

/// Sweeps fault intensities over the synthesized table: for each
/// (intensity, trial) one fault plan is materialized and replayed under
/// every policy, so policies are compared against identical fault
/// sequences. Deterministic for a fixed seed.
[[nodiscard]] ResilienceReport run_campaign(
    const spec::Specification& spec, const sched::ScheduleTable& table,
    const std::vector<FaultSpec>& specs, const CampaignOptions& options);

/// The report as a JSON document (docs/schemas/resilience.schema.json).
/// Contains no timestamps or wall-clock data: byte-identical for
/// identical inputs.
[[nodiscard]] std::string resilience_report_json(
    const ResilienceReport& report);

/// Renders the per-policy summary table for the CLI.
[[nodiscard]] std::string format_resilience(const ResilienceReport& report);

}  // namespace ezrt::runtime
