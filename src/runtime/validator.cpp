#include "runtime/validator.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace ezrt::runtime {

namespace {

/// Segments of one task instance, gathered from the table.
struct InstanceRecord {
  std::vector<sched::ScheduleItem> segments;  // in start order
  [[nodiscard]] Time start() const { return segments.front().start; }
  [[nodiscard]] Time end() const {
    const sched::ScheduleItem& last = segments.back();
    return last.start + last.duration;
  }
  [[nodiscard]] Time total() const {
    Time sum = 0;
    for (const sched::ScheduleItem& s : segments) {
      sum += s.duration;
    }
    return sum;
  }
};

}  // namespace

std::string ValidationReport::summary() const {
  if (ok()) {
    return "schedule valid (" + std::to_string(instances_checked) +
           " instances, " + std::to_string(segments_checked) + " segments)";
  }
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (const std::string& v : violations) {
    os << "\n  - " << v;
  }
  return os.str();
}

ValidationReport validate_schedule(const spec::Specification& spec,
                                   const sched::ScheduleTable& table) {
  ValidationReport report;
  auto violate = [&report](std::string message) {
    report.violations.push_back(std::move(message));
  };

  // Group segments per (task, instance), keeping table order.
  std::map<std::pair<TaskId, std::uint32_t>, InstanceRecord> instances;
  for (const sched::ScheduleItem& item : table.items) {
    ++report.segments_checked;
    if (!item.task.valid() || item.task.value() >= spec.task_count()) {
      violate("segment references an unknown task");
      continue;
    }
    if (item.duration == 0) {
      violate("task '" + spec.task(item.task).name +
              "' has a zero-length segment at t=" +
              std::to_string(item.start));
    }
    instances[{item.task, item.instance}].segments.push_back(item);
  }

  // Completeness: exactly N(t_i) instances per task, contiguous indices.
  const Time ps = table.schedule_period;
  for (TaskId id : spec.task_ids()) {
    const spec::Task& task = spec.task(id);
    if (ps == 0 || ps % task.timing.period != 0) {
      violate("schedule period " + std::to_string(ps) +
              " is not a multiple of task '" + task.name + "' period");
      continue;
    }
    const Time expected = ps / task.timing.period;
    for (Time k = 0; k < expected; ++k) {
      if (!instances.contains({id, static_cast<std::uint32_t>(k)})) {
        violate("task '" + task.name + "' instance " + std::to_string(k + 1) +
                " never executes");
      }
    }
  }

  // Per-instance contracts.
  for (const auto& [key, record] : instances) {
    ++report.instances_checked;
    const auto& [task_id, instance] = key;
    const spec::Task& task = spec.task(task_id);
    const spec::TimingConstraints& c = task.timing;
    const Time arrival = c.phase + static_cast<Time>(instance) * c.period;
    const std::string label =
        task.name + "#" + std::to_string(instance + 1);

    if (record.total() != c.computation) {
      violate(label + ": executes " + std::to_string(record.total()) +
              " units, WCET is " + std::to_string(c.computation));
    }
    if (record.start() < arrival + c.release) {
      violate(label + ": starts at " + std::to_string(record.start()) +
              ", release is " + std::to_string(arrival + c.release));
    }
    if (record.end() > arrival + c.deadline) {
      violate(label + ": completes at " + std::to_string(record.end()) +
              ", deadline is " + std::to_string(arrival + c.deadline));
    }
    if (task.scheduling == spec::SchedulingType::kNonPreemptive &&
        record.segments.size() != 1) {
      violate(label + ": non-preemptive task split into " +
              std::to_string(record.segments.size()) + " segments");
    }
    for (std::size_t i = 0; i < record.segments.size(); ++i) {
      const bool expected_flag = i > 0;
      if (record.segments[i].preempted != expected_flag) {
        violate(label + ": segment " + std::to_string(i + 1) +
                " carries preempted=" +
                (record.segments[i].preempted ? "true" : "false") +
                ", expected " + (expected_flag ? "true" : "false"));
      }
    }
  }

  // Processor exclusivity: sort segments per processor and sweep.
  std::map<ProcessorId, std::vector<const sched::ScheduleItem*>> by_proc;
  for (const sched::ScheduleItem& item : table.items) {
    if (item.task.valid() && item.task.value() < spec.task_count()) {
      by_proc[spec.task(item.task).processor].push_back(&item);
    }
  }
  for (auto& [proc, segments] : by_proc) {
    std::sort(segments.begin(), segments.end(),
              [](const sched::ScheduleItem* a, const sched::ScheduleItem* b) {
                return a->start < b->start;
              });
    for (std::size_t i = 1; i < segments.size(); ++i) {
      const sched::ScheduleItem* prev = segments[i - 1];
      if (prev->start + prev->duration > segments[i]->start) {
        violate("processor '" + spec.processor(proc).name +
                "': segments of '" + spec.task(prev->task).name + "' and '" +
                spec.task(segments[i]->task).name + "' overlap at t=" +
                std::to_string(segments[i]->start));
      }
    }
  }

  // Precedence: k-th successor start after k-th predecessor finish.
  for (TaskId before : spec.task_ids()) {
    for (TaskId after : spec.task(before).precedes) {
      std::vector<Time> finishes;
      std::vector<Time> starts;
      for (const auto& [key, record] : instances) {
        if (key.first == before) {
          finishes.push_back(record.end());
        }
        if (key.first == after) {
          starts.push_back(record.start());
        }
      }
      std::sort(finishes.begin(), finishes.end());
      std::sort(starts.begin(), starts.end());
      for (std::size_t k = 0; k < starts.size(); ++k) {
        if (k >= finishes.size()) {
          violate("precedence " + spec.task(before).name + " -> " +
                  spec.task(after).name + ": successor instance " +
                  std::to_string(k + 1) + " has no matching predecessor");
          break;
        }
        if (starts[k] < finishes[k]) {
          violate("precedence " + spec.task(before).name + " -> " +
                  spec.task(after).name + ": start " +
                  std::to_string(starts[k]) + " before predecessor finish " +
                  std::to_string(finishes[k]));
        }
      }
    }
  }

  // Core assignment: a row that names a processor must name the one its
  // task is pinned to. Rows without an assignment (hand-built tables from
  // before processors were first-class) are exempt.
  for (const sched::ScheduleItem& item : table.items) {
    if (!item.processor.valid() || !item.task.valid() ||
        item.task.value() >= spec.task_count()) {
      continue;
    }
    if (item.processor != spec.task(item.task).processor) {
      violate("task '" + spec.task(item.task).name + "' segment at t=" +
              std::to_string(item.start) + " runs on processor " +
              std::to_string(item.processor.value()) +
              ", the task is pinned to " +
              std::to_string(spec.task(item.task).processor.value()));
    }
  }

  // Bus serialization: transfers on the same bus never overlap.
  {
    std::map<std::string, std::vector<const sched::BusSegment*>> by_bus;
    for (const sched::BusSegment& seg : table.bus_timeline) {
      if (seg.message.value() >= spec.message_count()) {
        violate("bus segment at t=" + std::to_string(seg.start) +
                " references an unknown message");
        continue;
      }
      by_bus[spec.message(seg.message).bus].push_back(&seg);
    }
    for (auto& [bus, segments] : by_bus) {
      std::sort(segments.begin(), segments.end(),
                [](const sched::BusSegment* a, const sched::BusSegment* b) {
                  return a->start < b->start;
                });
      for (std::size_t i = 1; i < segments.size(); ++i) {
        const sched::BusSegment* prev = segments[i - 1];
        if (prev->start + prev->duration > segments[i]->start) {
          violate("bus '" + bus + "': transfers of '" +
                  spec.message(prev->message).name + "' and '" +
                  spec.message(segments[i]->message).name +
                  "' overlap at t=" + std::to_string(segments[i]->start));
        }
      }
    }
  }

  // Cross-core message precedence: the k-th transfer of a message starts
  // after the k-th sender finish, and the k-th receiver instance starts
  // after the k-th transfer completes. Only checked when the table carries
  // a bus timeline (extracted tables always do when messages exist).
  if (!table.bus_timeline.empty()) {
    for (MessageId mid : spec.message_ids()) {
      const spec::Message& msg = spec.message(mid);
      std::vector<const sched::BusSegment*> transfers;
      for (const sched::BusSegment& seg : table.bus_timeline) {
        if (seg.message == mid) {
          transfers.push_back(&seg);
        }
      }
      std::sort(transfers.begin(), transfers.end(),
                [](const sched::BusSegment* a, const sched::BusSegment* b) {
                  return a->start < b->start;
                });
      std::vector<Time> sender_finishes;
      std::vector<Time> receiver_starts;
      for (const auto& [key, record] : instances) {
        if (key.first == msg.sender) {
          sender_finishes.push_back(record.end());
        }
        if (key.first == msg.receiver) {
          receiver_starts.push_back(record.start());
        }
      }
      std::sort(sender_finishes.begin(), sender_finishes.end());
      std::sort(receiver_starts.begin(), receiver_starts.end());
      for (std::size_t k = 0; k < receiver_starts.size(); ++k) {
        if (k >= transfers.size()) {
          violate("message '" + msg.name + "': receiver instance " +
                  std::to_string(k + 1) + " has no matching bus transfer");
          break;
        }
        const Time xfer_end = transfers[k]->start + transfers[k]->duration;
        if (receiver_starts[k] < xfer_end) {
          violate("message '" + msg.name + "': receiver starts at " +
                  std::to_string(receiver_starts[k]) +
                  " before the transfer completes at " +
                  std::to_string(xfer_end));
        }
      }
      for (std::size_t k = 0;
           k < transfers.size() && k < sender_finishes.size(); ++k) {
        if (transfers[k]->start < sender_finishes[k]) {
          violate("message '" + msg.name + "': transfer starts at " +
                  std::to_string(transfers[k]->start) +
                  " before the sender finishes at " +
                  std::to_string(sender_finishes[k]));
        }
      }
    }
  }

  // Shared-synchronization budget: the trace-derived high-water mark must
  // fit the pool the net was built with.
  if (table.sync_budget > 0 && table.sync_high_water > table.sync_budget) {
    violate("sync budget: " + std::to_string(table.sync_high_water) +
            " synchronization resources held at once, budget K=" +
            std::to_string(table.sync_budget));
  }

  // Exclusion: instance spans of excluded tasks never overlap (the lock is
  // held from first dispatch to completion).
  for (TaskId a : spec.task_ids()) {
    for (TaskId b : spec.task(a).excludes) {
      if (a.value() >= b.value()) {
        continue;
      }
      for (const auto& [ka, ra] : instances) {
        if (ka.first != a) {
          continue;
        }
        for (const auto& [kb, rb] : instances) {
          if (kb.first != b) {
            continue;
          }
          const bool disjoint =
              ra.end() <= rb.start() || rb.end() <= ra.start();
          if (!disjoint) {
            violate("exclusion " + spec.task(a).name + " <-> " +
                    spec.task(b).name + ": spans [" +
                    std::to_string(ra.start()) + "," +
                    std::to_string(ra.end()) + ") and [" +
                    std::to_string(rb.start()) + "," +
                    std::to_string(rb.end()) + ") interleave");
          }
        }
      }
    }
  }

  return report;
}

}  // namespace ezrt::runtime
