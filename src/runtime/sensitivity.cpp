#include "runtime/sensitivity.hpp"

#include <algorithm>

#include "builder/tpn_builder.hpp"

namespace ezrt::runtime {

bool schedulable(const spec::Specification& candidate,
                 const sched::SchedulerOptions& options) {
  auto model = builder::build_tpn(candidate);
  if (!model.ok()) {
    return false;
  }
  return sched::DfsScheduler(model.value().net, options).search().status ==
         sched::SearchStatus::kFeasible;
}

namespace {

/// Copy of `spec` with every WCET scaled by permille/1000 (floor, >= 1).
[[nodiscard]] spec::Specification scaled(const spec::Specification& spec,
                                         std::uint32_t permille) {
  spec::Specification candidate = spec;
  for (TaskId id : candidate.task_ids()) {
    spec::TimingConstraints& t = candidate.task(id).timing;
    t.computation = std::max<Time>(
        1, t.computation * permille / 1000);
  }
  return candidate;
}

}  // namespace

SensitivityReport analyze_sensitivity(const spec::Specification& spec,
                                      const SensitivityOptions& options) {
  SensitivityReport report;
  report.baseline_schedulable = schedulable(spec, options.scheduler);
  if (!report.baseline_schedulable) {
    return report;
  }

  // Uniform scaling: binary search on the permille grid for the largest
  // feasible factor in [1000, scaling_max_permille].
  {
    std::uint32_t lo = 1000;  // known feasible
    std::uint32_t hi = options.scaling_max_permille;
    // Shrink hi to a known-infeasible bound (or accept it if feasible).
    if (schedulable(scaled(spec, hi), options.scheduler)) {
      lo = hi;
    }
    while (hi - lo > options.scaling_resolution_permille) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (schedulable(scaled(spec, mid), options.scheduler)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    report.max_scaling_permille = lo;
  }

  // Per-task absolute headroom.
  for (TaskId id : spec.task_ids()) {
    const spec::TimingConstraints& t = spec.task(id).timing;
    // Beyond d - r the release window is empty: hard cap.
    const Time cap = t.deadline - t.release - t.computation;
    Time lo = 0;
    Time hi = cap;
    auto feasible_with_extra = [&](Time extra) {
      spec::Specification candidate = spec;
      candidate.task(id).timing.computation += extra;
      return schedulable(candidate, options.scheduler);
    };
    if (hi > 0 && feasible_with_extra(hi)) {
      lo = hi;
    } else {
      while (hi > lo + 1) {
        const Time mid = lo + (hi - lo) / 2;
        if (feasible_with_extra(mid)) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
    }
    report.headroom.push_back(TaskHeadroom{id, lo});
  }
  return report;
}

}  // namespace ezrt::runtime
