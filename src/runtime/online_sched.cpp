#include "runtime/online_sched.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ezrt::runtime {

namespace {

/// One released, unfinished job.
struct Job {
  std::uint64_t id = 0;  ///< unique per release, for switch detection
  TaskId task;
  Time remaining = 0;
  Time absolute_deadline = 0;
  Time relative_deadline = 0;  // DM key
  Time period = 0;             // RM key
};

/// True if `a` should run in preference to `b` under `policy`.
[[nodiscard]] bool higher_urgency(const Job& a, const Job& b,
                                  OnlinePolicy policy) {
  switch (policy) {
    case OnlinePolicy::kEdf:
    case OnlinePolicy::kEdfNonPreemptive:
      if (a.absolute_deadline != b.absolute_deadline) {
        return a.absolute_deadline < b.absolute_deadline;
      }
      break;
    case OnlinePolicy::kDeadlineMonotonic:
      if (a.relative_deadline != b.relative_deadline) {
        return a.relative_deadline < b.relative_deadline;
      }
      break;
    case OnlinePolicy::kRateMonotonic:
      if (a.period != b.period) {
        return a.period < b.period;
      }
      break;
  }
  return a.task.value() < b.task.value();  // deterministic tie-break
}

}  // namespace

const char* to_string(OnlinePolicy policy) {
  switch (policy) {
    case OnlinePolicy::kEdf:
      return "EDF";
    case OnlinePolicy::kDeadlineMonotonic:
      return "DM";
    case OnlinePolicy::kRateMonotonic:
      return "RM";
    case OnlinePolicy::kEdfNonPreemptive:
      return "NP-EDF";
  }
  return "unknown";
}

OnlineResult simulate_online(const spec::Specification& spec,
                             OnlinePolicy policy) {
  OnlineResult result;
  auto ps = spec.schedule_period();
  if (!ps.ok()) {
    return result;  // unschedulable by convention: hyper-period overflow
  }
  const Time horizon = ps.value();
  const bool preemptive = policy != OnlinePolicy::kEdfNonPreemptive;
  constexpr std::uint64_t kNoJob = 0;

  std::vector<Job> ready;
  std::uint64_t next_job_id = 1;
  std::uint64_t running_id = kNoJob;  // job that ran in the previous unit

  result.schedulable = true;
  for (Time now = 0; now < horizon; ++now) {
    // Releases: task i's k-th job becomes ready at ph + k*p + r, for every
    // period start inside the hyper-period.
    for (TaskId id : spec.task_ids()) {
      const spec::TimingConstraints& c = spec.task(id).timing;
      const Time first = c.phase + c.release;
      if (now < first || (now - first) % c.period != 0) {
        continue;
      }
      const Time k = (now - first) / c.period;
      if (k >= horizon / c.period) {
        continue;  // instance belongs to the next hyper-period
      }
      const Time arrival = c.phase + k * c.period;
      ready.push_back(Job{next_job_id++, id, c.computation,
                          arrival + c.deadline, c.deadline, c.period});
    }

    // Deadline misses: jobs whose deadline passed with work left are
    // dropped (each miss counted once) so the run reports how many jobs
    // failed instead of cascading forever.
    std::erase_if(ready, [&](const Job& job) {
      if (job.absolute_deadline <= now && job.remaining > 0) {
        ++result.deadline_misses;
        result.schedulable = false;
        result.max_lateness = std::max(
            result.max_lateness,
            now - job.absolute_deadline + job.remaining);
        if (job.id == running_id) {
          running_id = kNoJob;
        }
        return true;
      }
      return false;
    });

    if (ready.empty()) {
      ++result.idle_time;
      running_id = kNoJob;
      continue;
    }

    // Pick the job for this time unit.
    Job* pick = nullptr;
    if (!preemptive && running_id != kNoJob) {
      for (Job& job : ready) {
        if (job.id == running_id) {
          pick = &job;  // non-preemptive: finish the started job
          break;
        }
      }
    }
    if (pick == nullptr) {
      pick = &ready.front();
      for (Job& job : ready) {
        if (higher_urgency(job, *pick, policy)) {
          pick = &job;
        }
      }
    }

    if (running_id != kNoJob && running_id != pick->id) {
      // The previously running job is still live (misses were dropped
      // above): this switch is a preemption.
      for (const Job& job : ready) {
        if (job.id == running_id) {
          ++result.preemptions;
          break;
        }
      }
    }
    if (running_id != pick->id) {
      ++result.dispatches;
    }

    --pick->remaining;
    ++result.busy_time;

    if (pick->remaining == 0) {
      const std::uint64_t done = pick->id;
      std::erase_if(ready, [done](const Job& job) { return job.id == done; });
      running_id = kNoJob;
    } else {
      running_id = pick->id;
    }
  }

  // Anything unfinished at the horizon has missed (d <= p keeps every
  // deadline inside the hyper-period).
  for (const Job& job : ready) {
    if (job.remaining > 0) {
      ++result.deadline_misses;
      result.schedulable = false;
    }
  }
  return result;
}

OnlineTailResult simulate_edf_tail(std::vector<OnlineJob> jobs, Time from,
                                   Time horizon) {
  OnlineTailResult result;
  // Run until the latest deadline: a drifted release can push a deadline
  // past the nominal hyper-period, and dropping such a job silently would
  // understate the miss count.
  Time end = horizon;
  for (const OnlineJob& job : jobs) {
    end = std::max(end, job.absolute_deadline);
  }

  std::vector<OnlineJob*> ready;
  std::size_t next_release = 0;
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const OnlineJob& a, const OnlineJob& b) {
                     return a.release < b.release;
                   });
  const OnlineJob* running = nullptr;

  for (Time now = from; now < end; ++now) {
    while (next_release < jobs.size() &&
           std::max(jobs[next_release].release, from) <= now) {
      if (jobs[next_release].remaining > 0) {
        ready.push_back(&jobs[next_release]);
      }
      ++next_release;
    }
    std::erase_if(ready, [&](OnlineJob* job) {
      if (job->absolute_deadline <= now && job->remaining > 0) {
        ++result.deadline_misses;
        if (running == job) {
          running = nullptr;
        }
        return true;
      }
      return false;
    });
    if (ready.empty()) {
      if (now < horizon) {
        ++result.idle_time;
      }
      running = nullptr;
      continue;
    }
    OnlineJob* pick = ready.front();
    for (OnlineJob* job : ready) {
      if (job->absolute_deadline != pick->absolute_deadline
              ? job->absolute_deadline < pick->absolute_deadline
              : (job->task != pick->task ? job->task < pick->task
                                         : job->instance < pick->instance)) {
        pick = job;
      }
    }
    if (running != nullptr && running != pick) {
      ++result.preemptions;
    }
    --pick->remaining;
    ++result.busy_time;
    if (pick->remaining == 0) {
      std::erase(ready, pick);
      running = nullptr;
    } else {
      running = pick;
    }
  }
  for (const OnlineJob* job : ready) {
    if (job->remaining > 0) {
      ++result.deadline_misses;
    }
  }
  return result;
}

}  // namespace ezrt::runtime
