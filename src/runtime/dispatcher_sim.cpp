#include "runtime/dispatcher_sim.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "base/hash.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace ezrt::runtime {

namespace {

/// Deterministic per-instance actual execution time under the model.
[[nodiscard]] Time actual_execution(const spec::Task& task,
                                    std::uint32_t instance,
                                    const DispatchSimOptions& options) {
  const Time wcet = task.timing.computation;
  if (options.min_execution_fraction >= 1.0) {
    return wcet;
  }
  // Uniform in [min_fraction, 1] from a per-instance hash.
  std::uint64_t h = hash_mix(options.seed, instance);
  for (char c : task.name) {
    h = hash_mix(h, static_cast<std::uint64_t>(c));
  }
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  const double fraction =
      options.min_execution_fraction +
      (1.0 - options.min_execution_fraction) * unit;
  const Time actual = static_cast<Time>(
      std::llround(std::ceil(fraction * static_cast<double>(wcet))));
  return std::clamp<Time>(actual, 1, wcet);
}

/// args payload identifying one task instance in the trace.
[[nodiscard]] std::string instance_args(const std::string& task,
                                        std::uint32_t instance) {
  obs::JsonWriter w;
  w.begin_object()
      .member("task", std::string_view(task))
      .member("instance", instance + 1)
      .end_object();
  return w.take();
}

[[nodiscard]] std::string fault_args(const std::string& task,
                                     std::uint32_t instance,
                                     Time magnitude) {
  obs::JsonWriter w;
  w.begin_object()
      .member("task", std::string_view(task))
      .member("instance", instance + 1)
      .member("magnitude", magnitude)
      .end_object();
  return w.take();
}

}  // namespace

DispatcherRun simulate_dispatcher(const spec::Specification& spec,
                                  const sched::ScheduleTable& table,
                                  const DispatchSimOptions& options) {
  using InstanceKey = std::pair<TaskId, std::uint32_t>;
  DispatcherRun run;
  obs::Tracer* const tracer = options.tracer;
  const FaultModel* const faults = options.faults;
  // skip-instance and retry-next-slot convert what would be dispatcher
  // inconsistencies into accounted degradation; abort (and the campaign-
  // handled fallback-online) keep the unmitigated behavior.
  const bool graceful =
      faults != nullptr &&
      (options.recovery == RecoveryPolicy::kSkipInstance ||
       options.recovery == RecoveryPolicy::kRetryNextSlot);
  Time clock = 0;
  auto fault = [&](std::string message) {
    if (tracer != nullptr) {
      obs::JsonWriter w;
      w.begin_object()
          .member("message", std::string_view(message))
          .end_object();
      tracer->instant_at("fault", "dispatch", clock, w.take(),
                         obs::kTrackVirtual);
    }
    run.faults.push_back(std::move(message));
  };
  // Closes the span of the segment that just executed on the virtual-time
  // track; a zero-length segment leaves no span.
  auto trace_segment = [&](const InstanceKey& key, Time start,
                           Time executed) {
    if (tracer == nullptr || executed == 0) {
      return;
    }
    const spec::Task& task = spec.task(key.first);
    tracer->complete(task.name + "#" + std::to_string(key.second + 1),
                     "dispatch", start, executed,
                     instance_args(task.name, key.second),
                     obs::kTrackVirtual);
  };
  auto trace_instant = [&](std::string_view name, const InstanceKey& key,
                           Time at, Time magnitude) {
    if (tracer == nullptr) {
      return;
    }
    tracer->instant_at(name, "fault", at,
                       fault_args(spec.task(key.first).name, key.second,
                                  magnitude),
                       obs::kTrackVirtual);
  };

  std::vector<sched::ScheduleItem> items = table.items;
  std::stable_sort(items.begin(), items.end(),
                   [](const sched::ScheduleItem& a,
                      const sched::ScheduleItem& b) {
                     return a.start < b.start;
                   });

  // Partition the table per core: each processor runs its own timer-driven
  // dispatcher over its own rows. Rows without a processor assignment
  // (tables built before processors were first-class, hand-made tests)
  // fall to core 0, which makes the mono-processor walk bit-identical to
  // the single-dispatcher simulator.
  std::size_t cores = std::max<std::size_t>(1, table.processor_count);
  for (const sched::ScheduleItem& item : items) {
    if (item.processor.valid()) {
      cores = std::max<std::size_t>(cores, item.processor.value() + 1);
    }
  }
  std::vector<std::vector<sched::ScheduleItem>> core_items(cores);
  for (const sched::ScheduleItem& item : items) {
    core_items[item.processor.valid() ? item.processor.value() : 0]
        .push_back(item);
  }
  auto core_of = [&](TaskId task) -> std::size_t {
    if (task.value() >= spec.task_count()) {
      return 0;
    }
    const ProcessorId proc = spec.task(task).processor;
    return proc.valid() && proc.value() < cores ? proc.value() : 0;
  };

  // Bus co-simulation: the statically scheduled message transfers replay
  // alongside the cores. Each transfer occupies the bus for its window and
  // leaves send/receive instants on the virtual-time track.
  run.core_busy.assign(cores, 0);
  run.core_idle.assign(cores, 0);
  for (const sched::BusSegment& seg : table.bus_timeline) {
    run.bus_busy_time += seg.duration;
    if (tracer != nullptr && seg.message.value() < spec.message_count()) {
      const spec::Message& msg = spec.message(seg.message);
      obs::JsonWriter w;
      w.begin_object()
          .member("message", std::string_view(msg.name))
          .member("bus", std::string_view(msg.bus))
          .end_object();
      tracer->complete("msg:" + msg.name, "bus", seg.start, seg.duration,
                       w.take(), obs::kTrackVirtual);
      tracer->instant_at("msg-send:" + msg.name, "bus", seg.start, "",
                         obs::kTrackVirtual);
      tracer->instant_at("msg-recv:" + msg.name, "bus",
                         seg.start + seg.duration, "", obs::kTrackVirtual);
    }
  }

  // Remaining WCET per live instance, as the dispatcher would track it via
  // the schedule table's resume flags. Tasks are pinned to one core, so
  // the instance maps are shared across the per-core walks without key
  // collisions.
  std::map<InstanceKey, Time> remaining;
  std::map<InstanceKey, Time> completion;
  // Fault-injection bookkeeping. `need` is the effective (fault-inflated)
  // demand, `last_activity` the end of the instance's last segment — the
  // earliest point a slack retry can begin. Idle windows accumulate each
  // core's unused capacity for retry-next-slot, kept per core so a retry
  // re-executes on the processor the task is pinned to.
  std::map<InstanceKey, Time> need;
  std::map<InstanceKey, Time> last_activity;
  std::set<InstanceKey> transient;  ///< latched transient failures
  std::set<InstanceKey> skipped;
  std::set<InstanceKey> recovered;
  std::vector<std::vector<std::pair<Time, Time>>> idle_windows(cores);

  // Applies the instance's start-time faults: overruns and bursts inflate
  // the demand, transient failures latch for later detection. Returns the
  // effective demand.
  auto apply_start_faults = [&](const spec::Task& task,
                                const InstanceKey& key, Time at) -> Time {
    Time demand = actual_execution(task, key.second, options);
    if (faults == nullptr) {
      return demand;
    }
    if (const InjectedFault* f =
            faults->find(key.first, key.second, FaultKind::kWcetOverrun)) {
      demand += f->magnitude;
      ++run.injection.wcet_overruns;
      ++run.injection.injected;
      trace_instant("fault:wcet-overrun", key, at, f->magnitude);
    }
    if (const InjectedFault* f = faults->find(
            key.first, key.second, FaultKind::kInterferenceBurst)) {
      demand += f->magnitude;
      ++run.injection.interference_bursts;
      ++run.injection.injected;
      trace_instant("fault:interference-burst", key, at, f->magnitude);
    }
    if (faults->find(key.first, key.second,
                     FaultKind::kTransientFailure) != nullptr) {
      transient.insert(key);
      ++run.injection.transient_failures;
      ++run.injection.injected;
      trace_instant("fault:transient-failure", key, at, 0);
    }
    return demand;
  };

  // The instance currently "on the CPU" and how long it still runs in the
  // current segment; used to detect preemptions. One walk per core, each
  // with its own clock and dispatcher state.
  bool cpu_busy = false;
  InstanceKey on_cpu{};
  Time segment_ends = 0;

  for (std::size_t core = 0; core < cores; ++core) {
    clock = 0;
    cpu_busy = false;
    on_cpu = InstanceKey{};
    segment_ends = 0;
    for (const sched::ScheduleItem& item : core_items[core]) {
      if (item.task.value() >= spec.task_count()) {
        fault("table entry references an unknown task");
        continue;
      }
      const spec::Task& task = spec.task(item.task);
      const auto key = std::make_pair(item.task, item.instance);

      if (item.start < clock) {
        if (graceful) {
          // A drifted segment overran this entry's slot; the dispatcher
          // drops the entry instead of corrupting its bookkeeping. A
          // dropped start leaves the whole instance to the recovery pass.
          if (!item.preempted && !remaining.contains(key)) {
            remaining[key] = apply_start_faults(task, key, clock);
            need[key] = remaining[key];
            last_activity[key] = clock;
          }
          continue;
        }
        fault("timer for '" + task.name + "' at t=" +
              std::to_string(item.start) + " is in the past (clock " +
              std::to_string(clock) + ")");
        continue;
      }

      Time dispatch_at = item.start;
      if (faults != nullptr && !item.preempted) {
        if (const InjectedFault* f = faults->find(
                item.task, item.instance, FaultKind::kReleaseDrift)) {
          dispatch_at += f->magnitude;
          ++run.injection.release_drifts;
          ++run.injection.injected;
          trace_instant("fault:release-drift", key, item.start, f->magnitude);
        }
      }
      bool saved_context = false;
      if (cpu_busy) {
        // Run the previous task until this timer interrupt or its segment
        // end, whichever is earlier. A table produced by the scheduler cuts
        // segments exactly at the next dispatch, so an unfinished budget at
        // the boundary *is* a preemption: the ISR saves its context.
        const Time ran_until = std::min(dispatch_at, segment_ends);
        const Time executed = ran_until - clock;
        remaining[on_cpu] -= std::min(remaining[on_cpu], executed);
        run.busy_time += executed;
        run.core_busy[core] += executed;
        trace_segment(on_cpu, clock, executed);
        if (executed > 0) {
          last_activity[on_cpu] = ran_until;
        }
        clock = ran_until;
        if (remaining[on_cpu] == 0) {
          if (!completion.contains(on_cpu)) {
            completion[on_cpu] = ran_until;
          }
          cpu_busy = false;
        } else if (ran_until == dispatch_at) {
          saved_context = true;  // interrupted with work left
          ++run.context_saves;
          cpu_busy = false;
          if (tracer != nullptr) {
            tracer->instant_at(
                "preempt", "dispatch", dispatch_at,
                instance_args(spec.task(on_cpu.first).name, on_cpu.second),
                obs::kTrackVirtual);
          }
        } else {
          // Segment budget exhausted before the next dispatch with WCET
          // left: the table under-allocated; the instance-completion audit
          // below reports it.
          cpu_busy = false;
        }
      }
      if (dispatch_at > clock) {
        run.idle_time += dispatch_at - clock;
        run.core_idle[core] += dispatch_at - clock;
        idle_windows[core].emplace_back(clock, dispatch_at);
      }
      run.events.push_back(DispatchEvent{dispatch_at, item.task,
                                         item.instance, item.preempted,
                                         saved_context});

      // Start or resume the entry's instance.
      if (!item.preempted) {
        if (remaining.contains(key)) {
          fault(task.name + "#" + std::to_string(item.instance + 1) +
                ": started twice");
        }
        const Time demand = apply_start_faults(task, key, dispatch_at);
        need[key] = demand;
        if (transient.contains(key) &&
            options.recovery == RecoveryPolicy::kSkipInstance) {
          // The dispatcher's start-of-instance self-test catches the fault
          // latch and abandons the instance; the slot idles.
          skipped.insert(key);
          remaining[key] = 0;
          clock = dispatch_at;
          trace_instant("recover:skip", key, dispatch_at, 0);
          continue;
        }
        remaining[key] = demand;
      } else {
        if (skipped.contains(key)) {
          continue;  // resumes of an abandoned instance are no-ops
        }
        if (!remaining.contains(key)) {
          fault(task.name + "#" + std::to_string(item.instance + 1) +
                ": resume without saved context");
          remaining[key] = 0;
        } else if (remaining[key] == 0) {
          if (options.min_execution_fraction >= 1.0 && faults == nullptr) {
            // Under the WCET model a resume for a finished instance means
            // the table is inconsistent; with early completion (or an
            // instance that finished despite injected faults) it is the
            // expected no-op (the dispatcher finds the done flag set).
            fault(task.name + "#" + std::to_string(item.instance + 1) +
                  ": resume without saved context");
          } else {
            continue;  // benign: instance finished early, idle until next
          }
        }
        ++run.context_restores;
      }

      cpu_busy = true;
      on_cpu = key;
      clock = dispatch_at;
      segment_ends = dispatch_at + std::min(remaining[key], item.duration);
    }

    // Drain the final segment.
    if (cpu_busy) {
      const Time executed = segment_ends - clock;
      remaining[on_cpu] -= std::min(remaining[on_cpu], executed);
      run.busy_time += executed;
      run.core_busy[core] += executed;
      trace_segment(on_cpu, clock, executed);
      if (executed > 0) {
        last_activity[on_cpu] = segment_ends;
      }
      if (remaining[on_cpu] == 0 && !completion.contains(on_cpu)) {
        completion[on_cpu] = segment_ends;
      }
      clock = segment_ends;
    }
    if (table.schedule_period > clock) {
      idle_windows[core].emplace_back(clock, table.schedule_period);
    }
  }

  // retry-next-slot: failed or unfinished instances re-execute in the
  // table's idle slack, earliest deadline first. A retry recovers iff its
  // full deficit fits into windows after the failure and before the
  // deadline; attempted-but-late retries still consume the slack they
  // occupied.
  if (faults != nullptr &&
      options.recovery == RecoveryPolicy::kRetryNextSlot) {
    struct Retry {
      InstanceKey key;
      Time deficit = 0;
      Time deadline_abs = 0;
      Time earliest = 0;
    };
    std::vector<Retry> candidates;
    for (const auto& [key, rem] : remaining) {
      const spec::Task& task = spec.task(key.first);
      const Time arrival =
          task.timing.phase +
          static_cast<Time>(key.second) * task.timing.period;
      const Time deadline_abs = arrival + task.timing.deadline;
      Time earliest = arrival;
      if (auto it = last_activity.find(key); it != last_activity.end()) {
        earliest = std::max(earliest, it->second);
      }
      if (rem > 0) {
        candidates.push_back(Retry{key, rem, deadline_abs, earliest});
      } else if (transient.contains(key) && completion.contains(key)) {
        // Detected at completion: the whole computation re-runs.
        candidates.push_back(
            Retry{key, need[key], deadline_abs, completion[key]});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Retry& a, const Retry& b) {
                return a.deadline_abs != b.deadline_abs
                           ? a.deadline_abs < b.deadline_abs
                           : a.key < b.key;
              });
    for (const Retry& retry : candidates) {
      ++run.injection.retries;
      Time left = retry.deficit;
      Time finish = 0;
      // Retries consume slack on the core the task is pinned to: a fault
      // on one processor is recovered there while the others keep their
      // own tables (and their own idle windows) untouched.
      std::vector<std::pair<Time, Time>>& windows =
          idle_windows[core_of(retry.key.first)];
      for (std::size_t i = 0; i < windows.size() && left > 0; ++i) {
        auto& [begin, end] = windows[i];
        const Time from = std::max(begin, retry.earliest);
        if (from >= end) {
          continue;
        }
        const Time used = std::min(end - from, left);
        left -= used;
        finish = from + used;
        // Split: the prefix [begin, from) survives; so does any tail
        // (non-empty only when the deficit ran out inside the window).
        const Time tail_begin = from + used;
        const Time tail_end = end;
        end = from;
        if (tail_begin < tail_end) {
          windows.insert(windows.begin() + i + 1, {tail_begin, tail_end});
        }
      }
      if (left == 0 && finish != 0 && finish <= retry.deadline_abs) {
        ++run.injection.retries_recovered;
        remaining[retry.key] = 0;
        completion[retry.key] = finish;
        recovered.insert(retry.key);
        transient.erase(retry.key);
        trace_instant("recover:retry", retry.key, finish, retry.deficit);
      }
    }
  }

  // Deadline accounting per instance.
  run.all_deadlines_met = true;
  for (const auto& [key, rem] : remaining) {
    const spec::Task& task = spec.task(key.first);
    InstanceOutcome outcome;
    outcome.task = key.first;
    outcome.instance = key.second;
    outcome.arrival = task.timing.phase +
                      static_cast<Time>(key.second) * task.timing.period;
    const Time deadline_abs = outcome.arrival + task.timing.deadline;
    const bool incomplete = rem != 0 || !completion.contains(key);
    outcome.recovered = recovered.contains(key);
    if (skipped.contains(key) ||
        (incomplete && faults != nullptr &&
         options.recovery == RecoveryPolicy::kSkipInstance)) {
      // Controlled degradation: the dispatcher abandoned the instance
      // cleanly. Reported as a skip, not as an inconsistency or a miss.
      if (!skipped.contains(key)) {
        skipped.insert(key);
        trace_instant("recover:skip", key, deadline_abs, 0);
      }
      outcome.skipped = true;
      ++run.injection.skipped_instances;
      outcome.deadline_met = false;
      run.all_deadlines_met = false;
    } else if (incomplete) {
      outcome.deadline_met = false;
      run.all_deadlines_met = false;
      ++run.injection.deadline_misses;
      if (faults != nullptr &&
          options.recovery == RecoveryPolicy::kRetryNextSlot) {
        // The retry pass could not place it before the deadline: a miss,
        // but the dispatcher's bookkeeping stayed consistent.
      } else {
        fault(task.name + "#" + std::to_string(key.second + 1) +
              ": never completed (" + std::to_string(rem) +
              " WCET units left)");
      }
    } else {
      outcome.completion = completion[key];
      bool met = outcome.completion <= deadline_abs;
      if (met && transient.contains(key)) {
        // Completed on time, but the latched transient failure made the
        // result invalid — an unmitigated miss under abort semantics.
        met = false;
      }
      outcome.deadline_met = met;
      if (!met) {
        run.all_deadlines_met = false;
        ++run.injection.deadline_misses;
        if (tracer != nullptr) {
          tracer->instant_at("deadline-miss", "dispatch",
                             outcome.completion,
                             instance_args(task.name, key.second),
                             obs::kTrackVirtual);
        }
      }
    }
    run.outcomes.push_back(outcome);
  }

  return run;
}

}  // namespace ezrt::runtime
