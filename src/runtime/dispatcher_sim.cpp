#include "runtime/dispatcher_sim.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "base/hash.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace ezrt::runtime {

namespace {

/// Deterministic per-instance actual execution time under the model.
[[nodiscard]] Time actual_execution(const spec::Task& task,
                                    std::uint32_t instance,
                                    const DispatchSimOptions& options) {
  const Time wcet = task.timing.computation;
  if (options.min_execution_fraction >= 1.0) {
    return wcet;
  }
  // Uniform in [min_fraction, 1] from a per-instance hash.
  std::uint64_t h = hash_mix(options.seed, instance);
  for (char c : task.name) {
    h = hash_mix(h, static_cast<std::uint64_t>(c));
  }
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  const double fraction =
      options.min_execution_fraction +
      (1.0 - options.min_execution_fraction) * unit;
  const Time actual = static_cast<Time>(
      std::llround(std::ceil(fraction * static_cast<double>(wcet))));
  return std::clamp<Time>(actual, 1, wcet);
}

/// args payload identifying one task instance in the trace.
[[nodiscard]] std::string instance_args(const std::string& task,
                                        std::uint32_t instance) {
  obs::JsonWriter w;
  w.begin_object()
      .member("task", std::string_view(task))
      .member("instance", instance + 1)
      .end_object();
  return w.take();
}

}  // namespace

DispatcherRun simulate_dispatcher(const spec::Specification& spec,
                                  const sched::ScheduleTable& table,
                                  const DispatchSimOptions& options) {
  DispatcherRun run;
  obs::Tracer* const tracer = options.tracer;
  Time clock = 0;
  auto fault = [&](std::string message) {
    if (tracer != nullptr) {
      obs::JsonWriter w;
      w.begin_object()
          .member("message", std::string_view(message))
          .end_object();
      tracer->instant_at("fault", "dispatch", clock, w.take(),
                         obs::kTrackVirtual);
    }
    run.faults.push_back(std::move(message));
  };
  // Closes the span of the segment that just executed on the virtual-time
  // track; a zero-length segment leaves no span.
  auto trace_segment = [&](const std::pair<TaskId, std::uint32_t>& key,
                           Time start, Time executed) {
    if (tracer == nullptr || executed == 0) {
      return;
    }
    const spec::Task& task = spec.task(key.first);
    tracer->complete(task.name + "#" + std::to_string(key.second + 1),
                     "dispatch", start, executed,
                     instance_args(task.name, key.second),
                     obs::kTrackVirtual);
  };

  std::vector<sched::ScheduleItem> items = table.items;
  std::stable_sort(items.begin(), items.end(),
                   [](const sched::ScheduleItem& a,
                      const sched::ScheduleItem& b) {
                     return a.start < b.start;
                   });

  // Remaining WCET per live instance, as the dispatcher would track it via
  // the schedule table's resume flags.
  std::map<std::pair<TaskId, std::uint32_t>, Time> remaining;
  std::map<std::pair<TaskId, std::uint32_t>, Time> completion;

  // The instance currently "on the CPU" and how long it still runs in the
  // current segment; used to detect preemptions.
  bool cpu_busy = false;
  std::pair<TaskId, std::uint32_t> on_cpu{};
  Time segment_ends = 0;

  for (const sched::ScheduleItem& item : items) {
    if (item.task.value() >= spec.task_count()) {
      fault("table entry references an unknown task");
      continue;
    }
    const spec::Task& task = spec.task(item.task);
    const auto key = std::make_pair(item.task, item.instance);

    if (item.start < clock) {
      fault("timer for '" + task.name + "' at t=" +
            std::to_string(item.start) + " is in the past (clock " +
            std::to_string(clock) + ")");
      continue;
    }

    const Time dispatch_at = item.start;
    bool saved_context = false;
    if (cpu_busy) {
      // Run the previous task until this timer interrupt or its segment
      // end, whichever is earlier. A table produced by the scheduler cuts
      // segments exactly at the next dispatch, so an unfinished budget at
      // the boundary *is* a preemption: the ISR saves its context.
      const Time ran_until = std::min(dispatch_at, segment_ends);
      const Time executed = ran_until - clock;
      remaining[on_cpu] -= std::min(remaining[on_cpu], executed);
      run.busy_time += executed;
      trace_segment(on_cpu, clock, executed);
      clock = ran_until;
      if (remaining[on_cpu] == 0) {
        if (!completion.contains(on_cpu)) {
          completion[on_cpu] = ran_until;
        }
        cpu_busy = false;
      } else if (ran_until == dispatch_at) {
        saved_context = true;  // interrupted with work left
        ++run.context_saves;
        cpu_busy = false;
        if (tracer != nullptr) {
          tracer->instant_at(
              "preempt", "dispatch", dispatch_at,
              instance_args(spec.task(on_cpu.first).name, on_cpu.second),
              obs::kTrackVirtual);
        }
      } else {
        // Segment budget exhausted before the next dispatch with WCET
        // left: the table under-allocated; the instance-completion audit
        // below reports it.
        cpu_busy = false;
      }
    }
    if (dispatch_at > clock) {
      run.idle_time += dispatch_at - clock;
    }
    run.events.push_back(DispatchEvent{dispatch_at, item.task,
                                       item.instance, item.preempted,
                                       saved_context});

    // Start or resume the entry's instance.
    if (!item.preempted) {
      if (remaining.contains(key)) {
        fault(task.name + "#" + std::to_string(item.instance + 1) +
              ": started twice");
      }
      remaining[key] = actual_execution(task, item.instance, options);
    } else {
      if (!remaining.contains(key)) {
        fault(task.name + "#" + std::to_string(item.instance + 1) +
              ": resume without saved context");
        remaining[key] = 0;
      } else if (remaining[key] == 0) {
        if (options.min_execution_fraction >= 1.0) {
          // Under the WCET model a resume for a finished instance means
          // the table is inconsistent; with early completion it is the
          // expected no-op (the dispatcher finds the done flag set).
          fault(task.name + "#" + std::to_string(item.instance + 1) +
                ": resume without saved context");
        } else {
          continue;  // benign: instance finished early, idle until next
        }
      }
      ++run.context_restores;
    }

    cpu_busy = true;
    on_cpu = key;
    clock = dispatch_at;
    segment_ends = dispatch_at + std::min(remaining[key], item.duration);
  }

  // Drain the final segment.
  if (cpu_busy) {
    const Time executed = segment_ends - clock;
    remaining[on_cpu] -= std::min(remaining[on_cpu], executed);
    run.busy_time += executed;
    trace_segment(on_cpu, clock, executed);
    if (remaining[on_cpu] == 0 && !completion.contains(on_cpu)) {
      completion[on_cpu] = segment_ends;
    }
    clock = segment_ends;
  }

  // Deadline accounting per instance.
  run.all_deadlines_met = true;
  for (const auto& [key, rem] : remaining) {
    const spec::Task& task = spec.task(key.first);
    InstanceOutcome outcome;
    outcome.task = key.first;
    outcome.instance = key.second;
    outcome.arrival = task.timing.phase +
                      static_cast<Time>(key.second) * task.timing.period;
    if (rem != 0 || !completion.contains(key)) {
      fault(task.name + "#" + std::to_string(key.second + 1) +
            ": never completed (" + std::to_string(rem) +
            " WCET units left)");
      outcome.deadline_met = false;
      run.all_deadlines_met = false;
    } else {
      outcome.completion = completion[key];
      outcome.deadline_met =
          outcome.completion <= outcome.arrival + task.timing.deadline;
      if (!outcome.deadline_met) {
        run.all_deadlines_met = false;
        if (tracer != nullptr) {
          tracer->instant_at("deadline-miss", "dispatch", outcome.completion,
                             instance_args(task.name, key.second),
                             obs::kTrackVirtual);
        }
      }
    }
    run.outcomes.push_back(outcome);
  }

  return run;
}

}  // namespace ezrt::runtime
