// Timing and energy metrics over a synthesized schedule table.
//
// Pre-runtime schedules fix every dispatch instant, so response times,
// start jitter, slack and energy are all static quantities a designer can
// read off before deployment — one of the predictability arguments for
// the approach. This module derives them per task and system-wide.
// Energy uses the metamodel's per-task `energy` attribute (Fig 5),
// interpreted as power drawn while the task executes.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule_table.hpp"
#include "spec/specification.hpp"

namespace ezrt::runtime {

/// Aggregates for one task across all of its instances in the table.
struct TaskMetrics {
  TaskId task;
  std::uint32_t instances = 0;
  /// Response time = completion - arrival, over instances.
  Time worst_response = 0;
  Time best_response = 0;
  double mean_response = 0.0;
  /// Start jitter: max - min of (start - arrival) across instances.
  Time start_jitter = 0;
  /// Worst slack: min over instances of (deadline - completion).
  Time worst_slack = 0;
  /// Segments per instance beyond the first (preemption count).
  std::uint32_t preemptions = 0;
  /// energy-per-instance * instances (power x WCET model).
  std::uint64_t energy = 0;
};

/// Per-processor utilization breakdown (run-report schema v4).
struct ProcessorMetrics {
  ProcessorId processor;
  std::uint32_t tasks = 0;     ///< tasks pinned to this core
  std::uint32_t segments = 0;  ///< dispatch points on this core
  Time busy_time = 0;
  Time idle_time = 0;
  double utilization = 0.0;  ///< busy / schedule_period
};

struct ScheduleMetrics {
  std::vector<TaskMetrics> tasks;  ///< indexed by TaskId value
  Time makespan = 0;
  Time busy_time = 0;  ///< summed across processors
  Time idle_time = 0;  ///< capacity (period x processors) minus busy
  double utilization = 0.0;  ///< busy / capacity, system-wide
  std::uint64_t total_energy = 0;
  std::uint32_t total_preemptions = 0;
  /// Indexed by ProcessorId value; always at least one entry.
  std::vector<ProcessorMetrics> processors;
  /// Bus occupancy of the statically scheduled message transfers.
  std::uint32_t bus_transfers = 0;
  Time bus_busy_time = 0;
  double bus_utilization = 0.0;  ///< bus busy / schedule_period
  /// Shared-synchronization pool accounting, copied from the table
  /// (docs/multiprocessor.md; 0/0 for mono-processor models).
  std::uint32_t sync_budget = 0;
  std::uint32_t sync_high_water = 0;
};

/// Computes metrics from a (validated) table. Instances missing from the
/// table are ignored — run the validator first for completeness.
[[nodiscard]] ScheduleMetrics compute_metrics(
    const spec::Specification& spec, const sched::ScheduleTable& table);

/// Renders a fixed-width report of the metrics (one row per task).
[[nodiscard]] std::string format_metrics(const spec::Specification& spec,
                                         const ScheduleMetrics& metrics);

/// Renders an ASCII Gantt chart of the first `horizon` time units of the
/// table: one row per task, `#` for executing, `.` for idle, `|` at
/// period boundaries. `width` caps the number of character cells; time is
/// scaled down as needed.
[[nodiscard]] std::string render_gantt(const spec::Specification& spec,
                                       const sched::ScheduleTable& table,
                                       Time horizon = 0,
                                       std::size_t width = 80);

}  // namespace ezrt::runtime
