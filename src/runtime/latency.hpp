// End-to-end latency analysis over precedence/message chains.
//
// EHRT systems are usually specified as cause-effect chains (sample ->
// filter -> actuate); the per-task deadlines the scheduler enforces only
// bound each link. This module derives the *chain* latencies a designer
// actually cares about, directly from a synthesized table:
//
//   * enumerates all maximal chains in the precedence+message graph
//     (source = no predecessor, sink = no successor);
//   * for each chain and each instance index, latency = sink instance
//     completion - source instance arrival (instances correspond 1:1 for
//     equal-rate chains, the case the modeling method supports);
//   * reports worst/best/mean per chain.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule_table.hpp"
#include "spec/specification.hpp"

namespace ezrt::runtime {

/// One cause-effect chain through the precedence/message graph.
struct Chain {
  std::vector<TaskId> tasks;  ///< source first, sink last
  /// True when every hop is rate-matched (equal periods); latencies are
  /// only derived for such chains.
  bool rate_matched = false;
};

struct ChainLatency {
  Chain chain;
  std::uint32_t instances = 0;
  Time worst = 0;
  Time best = 0;
  double mean = 0.0;
};

/// All maximal chains of the specification's dependency graph (precedence
/// edges plus message sender->receiver edges).
[[nodiscard]] std::vector<Chain> enumerate_chains(
    const spec::Specification& spec);

/// Latency statistics for every rate-matched maximal chain under `table`.
[[nodiscard]] std::vector<ChainLatency> analyze_latency(
    const spec::Specification& spec, const sched::ScheduleTable& table);

/// Human-readable report ("sample -> filter -> actuate: worst 12 ...").
[[nodiscard]] std::string format_latency(
    const spec::Specification& spec,
    const std::vector<ChainLatency>& latencies);

}  // namespace ezrt::runtime
