// PNML interchange (ISO/IEC 15909-2, paper §4.1/§4.3).
//
// ezRealtime transfers its nets in the Petri Net Markup Language: the core
// place/transition/arc grammar carries the untimed structure, and a
// <toolspecific tool="ezRealtime"> annotation on each node carries the
// timing interval, priority, role and task binding of the extended TPN.
// Documents written here read back into structurally identical nets
// (round-trip tested), and the untimed core remains consumable by other
// PNML tools.
#pragma once

#include <string>
#include <string_view>

#include "base/result.hpp"
#include "tpn/net.hpp"

namespace ezrt::pnml {

/// PNML namespace used on the <pnml> root.
inline constexpr std::string_view kPnmlNamespace =
    "http://www.pnml.org/version-2009/grammar/pnml";

/// Identifies this tool's <toolspecific> annotations.
inline constexpr std::string_view kToolName = "ezRealtime";
inline constexpr std::string_view kToolVersion = "1.0";

/// Serializes a validated net to a PNML document.
[[nodiscard]] std::string write_pnml(const tpn::TimePetriNet& net);

/// Parses a PNML document produced by write_pnml (or hand-written in the
/// same dialect). The returned net is validated.
[[nodiscard]] Result<tpn::TimePetriNet> read_pnml(std::string_view document);

}  // namespace ezrt::pnml
