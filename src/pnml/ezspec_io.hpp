// The ezRealtime DSL document format (paper Fig 7).
//
// Specifications interchange as <rt:ez-spec> XML documents: one element
// per Processor / Task / Message, timing attributes as child elements
// (period, computing, deadline, schedulingMode "NP"/"P", power, ...), and
// relations as identifier references ("#ez..." lists in precedesTasks /
// excludesTasks / precedesMsgs attributes). This module writes and reads
// that dialect; round-trips preserve the full metamodel.
#pragma once

#include <string>
#include <string_view>

#include "base/result.hpp"
#include "spec/specification.hpp"

namespace ezrt::pnml {

inline constexpr std::string_view kEzSpecNamespace =
    "http://pnmp.sf.net/EZRealtime";

/// Serializes a specification to an ez-spec document. Identifiers are
/// minted (via validation on a copy) if absent.
[[nodiscard]] Result<std::string> write_ezspec(
    const spec::Specification& specification);

/// Parses an ez-spec document into a validated specification.
[[nodiscard]] Result<spec::Specification> read_ezspec(
    std::string_view document);

}  // namespace ezrt::pnml
