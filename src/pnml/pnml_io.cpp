#include "pnml/pnml_io.hpp"

#include <map>
#include <optional>
#include <string>

#include "base/strings.hpp"
#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace ezrt::pnml {

namespace {

using tpn::PlaceRole;
using tpn::TimePetriNet;
using tpn::TransitionRole;

// Role <-> string tables reuse tpn::to_string; parsing scans the enum.
[[nodiscard]] std::optional<TransitionRole> transition_role_from(
    std::string_view s) {
  for (int i = 0; i <= static_cast<int>(TransitionRole::kCommunication);
       ++i) {
    const auto role = static_cast<TransitionRole>(i);
    if (s == tpn::to_string(role)) {
      return role;
    }
  }
  return std::nullopt;
}

[[nodiscard]] std::optional<PlaceRole> place_role_from(std::string_view s) {
  for (int i = 0; i <= static_cast<int>(PlaceRole::kPrecedence); ++i) {
    const auto role = static_cast<PlaceRole>(i);
    if (s == tpn::to_string(role)) {
      return role;
    }
  }
  return std::nullopt;
}

void write_label(xml::Element& parent, std::string_view label,
                 std::string_view text) {
  parent.add_child(std::string(label)).add_child("text").set_text(text);
}

xml::Element& write_toolspecific(xml::Element& parent) {
  xml::Element& tool = parent.add_child("toolspecific");
  tool.set_attribute("tool", kToolName);
  tool.set_attribute("version", kToolVersion);
  return tool;
}

/// The ezRealtime toolspecific annotation of a node, if present.
[[nodiscard]] const xml::Element* find_toolspecific(const xml::Element& node) {
  for (const xml::ElementPtr& child : node.children()) {
    if (child->name() == "toolspecific" &&
        child->attribute("tool") == kToolName) {
      return child.get();
    }
  }
  return nullptr;
}

}  // namespace

std::string write_pnml(const TimePetriNet& net) {
  xml::Document doc;
  doc.root = std::make_unique<xml::Element>("pnml");
  doc.root->set_attribute("xmlns", kPnmlNamespace);

  xml::Element& net_el = doc.root->add_child("net");
  net_el.set_attribute("id", net.name().empty() ? "net0" : net.name());
  net_el.set_attribute(
      "type", "http://www.pnml.org/version-2009/grammar/ptnet");
  write_label(net_el, "name", net.name());
  xml::Element& page = net_el.add_child("page");
  page.set_attribute("id", "page0");

  for (PlaceId id : net.place_ids()) {
    const tpn::Place& place = net.place(id);
    xml::Element& el = page.add_child("place");
    el.set_attribute("id", "p" + std::to_string(id.value()));
    write_label(el, "name", place.name);
    if (place.initial_tokens > 0) {
      write_label(el, "initialMarking",
                  std::to_string(place.initial_tokens));
    }
    xml::Element& tool = write_toolspecific(el);
    tool.add_child("role").set_text(tpn::to_string(place.role));
    if (place.task.valid()) {
      tool.add_child("task").set_text(std::to_string(place.task.value()));
    }
  }

  for (TransitionId id : net.transition_ids()) {
    const tpn::Transition& t = net.transition(id);
    xml::Element& el = page.add_child("transition");
    el.set_attribute("id", "t" + std::to_string(id.value()));
    write_label(el, "name", t.name);
    xml::Element& tool = write_toolspecific(el);
    xml::Element& interval = tool.add_child("interval");
    interval.set_attribute("eft", std::to_string(t.interval.eft()));
    interval.set_attribute(
        "lft", t.interval.bounded() ? std::to_string(t.interval.lft())
                                    : std::string("inf"));
    tool.add_child("priority").set_text(std::to_string(t.priority));
    tool.add_child("role").set_text(tpn::to_string(t.role));
    if (t.task.valid()) {
      tool.add_child("task").set_text(std::to_string(t.task.value()));
    }
    if (t.code.has_value()) {
      tool.add_child("code").set_text(std::to_string(*t.code));
    }
  }

  std::size_t arc_id = 0;
  auto write_arc = [&](const std::string& source, const std::string& target,
                       std::uint32_t weight) {
    xml::Element& el = page.add_child("arc");
    el.set_attribute("id", "a" + std::to_string(arc_id++));
    el.set_attribute("source", source);
    el.set_attribute("target", target);
    if (weight != 1) {
      write_label(el, "inscription", std::to_string(weight));
    }
  };
  for (TransitionId id : net.transition_ids()) {
    const std::string t = "t" + std::to_string(id.value());
    for (const tpn::Arc& arc : net.inputs(id)) {
      write_arc("p" + std::to_string(arc.place.value()), t, arc.weight);
    }
    for (const tpn::Arc& arc : net.outputs(id)) {
      write_arc(t, "p" + std::to_string(arc.place.value()), arc.weight);
    }
  }

  return xml::to_string(doc);
}

Result<TimePetriNet> read_pnml(std::string_view document) {
  auto parsed = xml::parse(document);
  if (!parsed.ok()) {
    return parsed.error();
  }
  const xml::Element& root = *parsed.value().root;
  if (root.name() != "pnml") {
    return make_error(ErrorCode::kParseError,
                      "root element is <" + root.name() + ">, not <pnml>");
  }
  const xml::Element* net_el = root.find_child("net");
  if (net_el == nullptr) {
    return make_error(ErrorCode::kParseError, "<pnml> has no <net>");
  }
  const xml::Element* page = net_el->find_child("page");
  if (page == nullptr) {
    return make_error(ErrorCode::kParseError, "<net> has no <page>");
  }

  TimePetriNet net(net_el->label_text("name").value_or(
      std::string(net_el->attribute("id").value_or("net0"))));

  std::map<std::string, PlaceId> place_ids;
  std::map<std::string, TransitionId> transition_ids;

  for (const xml::ElementPtr& child : page->children()) {
    if (child->name() == "place") {
      auto id = child->require_attribute("id");
      if (!id.ok()) {
        return id.error();
      }
      tpn::Place place;
      place.name = child->label_text("name").value_or(id.value());
      if (auto marking = child->label_text("initialMarking")) {
        auto tokens = parse_uint(*marking);
        if (!tokens.ok()) {
          return tokens.error();
        }
        place.initial_tokens = static_cast<std::uint32_t>(tokens.value());
      }
      if (const xml::Element* tool = find_toolspecific(*child)) {
        if (auto role = tool->label_text("role")) {
          if (auto parsed_role = place_role_from(*role)) {
            place.role = *parsed_role;
          } else {
            return make_error(ErrorCode::kParseError,
                              "unknown place role '" + *role + "'");
          }
        }
        if (auto task = tool->label_text("task")) {
          auto value = parse_uint(*task);
          if (!value.ok()) {
            return value.error();
          }
          place.task = TaskId(static_cast<std::uint32_t>(value.value()));
        }
      }
      place_ids[id.value()] = net.add_place(std::move(place));
    } else if (child->name() == "transition") {
      auto id = child->require_attribute("id");
      if (!id.ok()) {
        return id.error();
      }
      tpn::Transition t;
      t.name = child->label_text("name").value_or(id.value());
      if (const xml::Element* tool = find_toolspecific(*child)) {
        if (const xml::Element* interval = tool->find_child("interval")) {
          auto eft_attr = interval->require_attribute("eft");
          auto lft_attr = interval->require_attribute("lft");
          if (!eft_attr.ok()) {
            return eft_attr.error();
          }
          if (!lft_attr.ok()) {
            return lft_attr.error();
          }
          auto eft = parse_uint(eft_attr.value());
          if (!eft.ok()) {
            return eft.error();
          }
          Time lft = kTimeInfinity;
          if (lft_attr.value() != "inf") {
            auto parsed_lft = parse_uint(lft_attr.value());
            if (!parsed_lft.ok()) {
              return parsed_lft.error();
            }
            lft = parsed_lft.value();
          }
          if (eft.value() > lft) {
            return make_error(ErrorCode::kParseError,
                              "transition '" + t.name +
                                  "': EFT exceeds LFT");
          }
          t.interval = TimeInterval(eft.value(), lft);
        }
        if (auto priority = tool->label_text("priority")) {
          auto value = parse_uint(*priority);
          if (!value.ok()) {
            return value.error();
          }
          t.priority = static_cast<tpn::Priority>(value.value());
        }
        if (auto role = tool->label_text("role")) {
          if (auto parsed_role = transition_role_from(*role)) {
            t.role = *parsed_role;
          } else {
            return make_error(ErrorCode::kParseError,
                              "unknown transition role '" + *role + "'");
          }
        }
        if (auto task = tool->label_text("task")) {
          auto value = parse_uint(*task);
          if (!value.ok()) {
            return value.error();
          }
          t.task = TaskId(static_cast<std::uint32_t>(value.value()));
        }
        if (auto code = tool->label_text("code")) {
          auto value = parse_uint(*code);
          if (!value.ok()) {
            return value.error();
          }
          t.code = static_cast<std::uint32_t>(value.value());
        }
      }
      transition_ids[id.value()] = net.add_transition(std::move(t));
    }
  }

  // Arcs in a second pass, once both endpoints exist.
  for (const xml::ElementPtr& child : page->children()) {
    if (child->name() != "arc") {
      continue;
    }
    auto source = child->require_attribute("source");
    auto target = child->require_attribute("target");
    if (!source.ok()) {
      return source.error();
    }
    if (!target.ok()) {
      return target.error();
    }
    std::uint32_t weight = 1;
    if (auto inscription = child->label_text("inscription")) {
      auto value = parse_uint(*inscription);
      if (!value.ok()) {
        return value.error();
      }
      weight = static_cast<std::uint32_t>(value.value());
    }
    const bool place_to_transition = place_ids.contains(source.value());
    if (place_to_transition) {
      if (!transition_ids.contains(target.value())) {
        return make_error(ErrorCode::kParseError,
                          "arc target '" + target.value() + "' not found");
      }
      net.add_input(transition_ids[target.value()],
                    place_ids[source.value()], weight);
    } else {
      if (!transition_ids.contains(source.value()) ||
          !place_ids.contains(target.value())) {
        return make_error(ErrorCode::kParseError,
                          "arc endpoints '" + source.value() + "' -> '" +
                              target.value() + "' not found");
      }
      net.add_output(transition_ids[source.value()],
                     place_ids[target.value()], weight);
    }
  }

  if (auto status = net.validate(); !status.ok()) {
    return status.error();
  }
  return net;
}

}  // namespace ezrt::pnml
