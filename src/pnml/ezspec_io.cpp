#include "pnml/ezspec_io.hpp"

#include <map>
#include <string>

#include "base/strings.hpp"
#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace ezrt::pnml {

namespace {

using spec::SchedulingType;
using spec::Specification;

/// "#id1 #id2" reference-list attribute values.
[[nodiscard]] std::string make_ref_list(
    const std::vector<std::string>& identifiers) {
  std::string out;
  for (const std::string& id : identifiers) {
    if (!out.empty()) {
      out += ' ';
    }
    out += '#';
    out += id;
  }
  return out;
}

[[nodiscard]] Result<std::vector<std::string>> parse_ref_list(
    std::string_view value) {
  std::vector<std::string> out;
  for (const std::string& token : split(value, ' ')) {
    const std::string_view ref = trim(token);
    if (ref.empty()) {
      continue;
    }
    if (ref.front() != '#') {
      return make_error(ErrorCode::kParseError,
                        "reference '" + std::string(ref) +
                            "' does not start with '#'");
    }
    out.emplace_back(ref.substr(1));
  }
  return out;
}

void add_field(xml::Element& parent, std::string_view name, Time value) {
  parent.add_child(std::string(name)).set_text(std::to_string(value));
}

[[nodiscard]] Result<Time> field(const xml::Element& el,
                                 std::string_view name, Time fallback,
                                 bool required) {
  const xml::Element* child = el.find_child(name);
  if (child == nullptr) {
    if (required) {
      return make_error(ErrorCode::kParseError,
                        "<" + el.name() + "> is missing <" +
                            std::string(name) + ">");
    }
    return fallback;
  }
  return parse_uint(child->text());
}

}  // namespace

Result<std::string> write_ezspec(const Specification& specification) {
  // Mint identifiers on a copy so references are expressible.
  Specification s = specification;
  if (auto status = s.validate(); !status.ok()) {
    return status.error();
  }

  xml::Document doc;
  doc.root = std::make_unique<xml::Element>("rt:ez-spec");
  doc.root->set_attribute("xmlns:rt", kEzSpecNamespace);
  doc.root->set_attribute("name", s.name());
  doc.root->set_attribute("dispOveh",
                          s.dispatcher_overhead() ? "true" : "false");
  if (s.sync_budget() > 0) {
    doc.root->set_attribute("syncBudget", std::to_string(s.sync_budget()));
  }

  for (ProcessorId id : s.processor_ids()) {
    const spec::Processor& p = s.processor(id);
    xml::Element& el = doc.root->add_child("Processor");
    el.set_attribute("identifier", p.identifier);
    el.add_child("name").set_text(p.name);
  }

  for (TaskId id : s.task_ids()) {
    const spec::Task& t = s.task(id);
    xml::Element& el = doc.root->add_child("Task");
    el.set_attribute("identifier", t.identifier);
    if (!t.precedes.empty()) {
      std::vector<std::string> refs;
      for (TaskId other : t.precedes) {
        refs.push_back(s.task(other).identifier);
      }
      el.set_attribute("precedesTasks", make_ref_list(refs));
    }
    if (!t.excludes.empty()) {
      std::vector<std::string> refs;
      for (TaskId other : t.excludes) {
        refs.push_back(s.task(other).identifier);
      }
      el.set_attribute("excludesTasks", make_ref_list(refs));
    }
    if (!t.precedes_msgs.empty()) {
      std::vector<std::string> refs;
      for (MessageId msg : t.precedes_msgs) {
        refs.push_back(s.message(msg).identifier);
      }
      el.set_attribute("precedesMsgs", make_ref_list(refs));
    }
    el.add_child("processor")
        .set_text(s.processor(t.processor).identifier);
    el.add_child("name").set_text(t.name);
    add_field(el, "period", t.timing.period);
    add_field(el, "phase", t.timing.phase);
    add_field(el, "release", t.timing.release);
    add_field(el, "power", t.energy);
    el.add_child("schedulingMode")
        .set_text(t.scheduling == SchedulingType::kPreemptive ? "P" : "NP");
    add_field(el, "computing", t.timing.computation);
    add_field(el, "deadline", t.timing.deadline);
    if (t.code.has_value()) {
      el.add_child("code").set_text(t.code->content);
    }
  }

  for (MessageId id : s.message_ids()) {
    const spec::Message& m = s.message(id);
    xml::Element& el = doc.root->add_child("Message");
    el.set_attribute("identifier", m.identifier);
    el.set_attribute("precedes", "#" + s.task(m.receiver).identifier);
    el.add_child("name").set_text(m.name);
    el.add_child("bus").set_text(m.bus);
    add_field(el, "grantBus", m.grant_bus);
    add_field(el, "communication", m.communication);
  }

  return xml::to_string(doc);
}

Result<Specification> read_ezspec(std::string_view document) {
  auto parsed = xml::parse(document);
  if (!parsed.ok()) {
    return parsed.error();
  }
  const xml::Element& root = *parsed.value().root;
  if (root.name() != "rt:ez-spec" && root.name() != "ez-spec") {
    return make_error(ErrorCode::kParseError,
                      "root element is <" + root.name() +
                          ">, not <rt:ez-spec>");
  }

  Specification s(std::string(root.attribute("name").value_or("untitled")));
  s.set_dispatcher_overhead(root.attribute("dispOveh") == "true");
  if (auto budget = root.attribute("syncBudget")) {
    auto parsed_budget = parse_uint(*budget);
    if (!parsed_budget.ok()) {
      return make_error(ErrorCode::kParseError,
                        "syncBudget is not a non-negative integer");
    }
    s.set_sync_budget(static_cast<std::uint32_t>(parsed_budget.value()));
  }

  std::map<std::string, ProcessorId> processors_by_id;
  std::map<std::string, TaskId> tasks_by_id;
  std::map<std::string, MessageId> messages_by_id;

  // Pass 1: processors, then tasks and messages (attributes only).
  for (const xml::ElementPtr& child : root.children()) {
    if (child->name() != "Processor") {
      continue;
    }
    auto id = child->require_attribute("identifier");
    if (!id.ok()) {
      return id.error();
    }
    spec::Processor p;
    p.identifier = id.value();
    p.name = child->label_text("name").value_or(id.value());
    const ProcessorId proc_id = s.add_processor(std::move(p));
    processors_by_id[id.value()] = proc_id;
  }

  for (const xml::ElementPtr& child : root.children()) {
    if (child->name() == "Task") {
      spec::Task t;
      t.identifier =
          std::string(child->attribute("identifier").value_or(""));
      auto name = child->label_text("name");
      if (!name.has_value()) {
        return make_error(ErrorCode::kParseError, "<Task> without <name>");
      }
      t.name = *name;

      auto period = field(*child, "period", 0, /*required=*/true);
      auto computing = field(*child, "computing", 0, /*required=*/true);
      auto deadline = field(*child, "deadline", 0, /*required=*/true);
      auto phase = field(*child, "phase", 0, /*required=*/false);
      auto release = field(*child, "release", 0, /*required=*/false);
      auto power = field(*child, "power", 0, /*required=*/false);
      for (const auto* r : {&period, &computing, &deadline, &phase, &release,
                            &power}) {
        if (!r->ok()) {
          return r->error();
        }
      }
      t.timing.period = period.value();
      t.timing.computation = computing.value();
      t.timing.deadline = deadline.value();
      t.timing.phase = phase.value();
      t.timing.release = release.value();
      t.energy = static_cast<std::uint32_t>(power.value());

      const auto mode = child->label_text("schedulingMode").value_or("NP");
      if (mode == "P" || mode == "preemptive") {
        t.scheduling = SchedulingType::kPreemptive;
      } else if (mode == "NP" || mode == "nonPreemptive") {
        t.scheduling = SchedulingType::kNonPreemptive;
      } else {
        return make_error(ErrorCode::kParseError,
                          "task '" + t.name + "': unknown schedulingMode '" +
                              mode + "'");
      }

      if (auto proc = child->label_text("processor")) {
        auto it = processors_by_id.find(*proc);
        if (it == processors_by_id.end()) {
          return make_error(ErrorCode::kParseError,
                            "task '" + t.name +
                                "' references unknown processor '" + *proc +
                                "'");
        }
        t.processor = it->second;
      }
      if (const xml::Element* code = child->find_child("code")) {
        spec::SourceCode source;
        source.content = code->text();
        t.code = std::move(source);
      }

      const TaskId task_id = s.add_task(std::move(t));
      const std::string& identifier = s.task(task_id).identifier;
      if (!identifier.empty()) {
        if (tasks_by_id.contains(identifier)) {
          return make_error(ErrorCode::kParseError,
                            "duplicate task identifier '" + identifier +
                                "'");
        }
        tasks_by_id[identifier] = task_id;
      }
    } else if (child->name() == "Message") {
      spec::Message m;
      m.identifier =
          std::string(child->attribute("identifier").value_or(""));
      m.name = child->label_text("name").value_or(m.identifier);
      m.bus = child->label_text("bus").value_or("bus0");
      auto grant = field(*child, "grantBus", 0, /*required=*/false);
      auto comm = field(*child, "communication", 0, /*required=*/false);
      if (!grant.ok()) {
        return grant.error();
      }
      if (!comm.ok()) {
        return comm.error();
      }
      m.grant_bus = grant.value();
      m.communication = comm.value();
      const MessageId msg_id = s.add_message(std::move(m));
      if (!s.message(msg_id).identifier.empty()) {
        messages_by_id[s.message(msg_id).identifier] = msg_id;
      }
    }
  }

  // Pass 2: resolve reference attributes.
  std::vector<std::pair<TaskId, MessageId>> pending_senders_;
  std::vector<std::pair<MessageId, TaskId>> pending_receivers_;
  std::size_t task_cursor = 0;
  std::vector<TaskId> document_tasks;
  for (TaskId id : s.task_ids()) {
    document_tasks.push_back(id);
  }
  for (const xml::ElementPtr& child : root.children()) {
    if (child->name() == "Task") {
      const TaskId self = document_tasks[task_cursor++];
      if (auto refs = child->attribute("precedesTasks")) {
        auto list = parse_ref_list(*refs);
        if (!list.ok()) {
          return list.error();
        }
        for (const std::string& ref : list.value()) {
          auto it = tasks_by_id.find(ref);
          if (it == tasks_by_id.end()) {
            return make_error(ErrorCode::kParseError,
                              "unknown task reference '#" + ref + "'");
          }
          s.add_precedence(self, it->second);
        }
      }
      if (auto refs = child->attribute("excludesTasks")) {
        auto list = parse_ref_list(*refs);
        if (!list.ok()) {
          return list.error();
        }
        for (const std::string& ref : list.value()) {
          auto it = tasks_by_id.find(ref);
          if (it == tasks_by_id.end()) {
            return make_error(ErrorCode::kParseError,
                              "unknown task reference '#" + ref + "'");
          }
          s.add_exclusion(self, it->second);
        }
      }
      if (auto refs = child->attribute("precedesMsgs")) {
        auto list = parse_ref_list(*refs);
        if (!list.ok()) {
          return list.error();
        }
        for (const std::string& ref : list.value()) {
          auto it = messages_by_id.find(ref);
          if (it == messages_by_id.end()) {
            return make_error(ErrorCode::kParseError,
                              "unknown message reference '#" + ref + "'");
          }
          // Remember the sender; the receiver comes from the message.
          pending_senders_.emplace_back(self, it->second);
        }
      }
    } else if (child->name() == "Message") {
      auto id_attr = child->attribute("identifier");
      if (!id_attr.has_value() ||
          !messages_by_id.contains(std::string(*id_attr))) {
        continue;
      }
      const MessageId msg = messages_by_id[std::string(*id_attr)];
      if (auto ref = child->attribute("precedes")) {
        auto list = parse_ref_list(*ref);
        if (!list.ok()) {
          return list.error();
        }
        if (list.value().size() != 1 ||
            !tasks_by_id.contains(list.value().front())) {
          return make_error(ErrorCode::kParseError,
                            "message 'precedes' must reference exactly one "
                            "known task");
        }
        pending_receivers_.emplace_back(msg,
                                        tasks_by_id[list.value().front()]);
      }
    }
  }

  // Connect messages now both ends are known.
  for (const auto& [msg, receiver] : pending_receivers_) {
    TaskId sender;
    for (const auto& [task, m] : pending_senders_) {
      if (m == msg) {
        sender = task;
        break;
      }
    }
    if (!sender.valid()) {
      return make_error(ErrorCode::kParseError,
                        "message '" + s.message(msg).name +
                            "' has a receiver but no sending task lists it "
                            "in precedesMsgs");
    }
    s.connect_message(sender, msg, receiver);
  }
  pending_senders_.clear();
  pending_receivers_.clear();

  if (auto status = s.validate(); !status.ok()) {
    return status.error();
  }
  return s;
}

}  // namespace ezrt::pnml
