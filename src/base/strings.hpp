// Small string helpers shared by the XML, PNML and codegen layers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "base/result.hpp"

namespace ezrt {

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a non-negative decimal integer; rejects trailing garbage.
[[nodiscard]] Result<std::uint64_t> parse_uint(std::string_view s);

/// Parses a decimal integer that may be negative.
[[nodiscard]] Result<std::int64_t> parse_int(std::string_view s);

/// True if `name` is usable as a C identifier (codegen symbol safety).
[[nodiscard]] bool is_c_identifier(std::string_view name);

/// Rewrites an arbitrary name into a valid C identifier (best effort:
/// non-identifier characters become '_', a leading digit gains a prefix).
[[nodiscard]] std::string sanitize_c_identifier(std::string_view name);

/// Replaces every occurrence of `from` (non-empty) with `to`.
[[nodiscard]] std::string replace_all(std::string_view s,
                                      std::string_view from,
                                      std::string_view to);

}  // namespace ezrt
