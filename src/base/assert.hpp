// Contract-checking macros.
//
// EZRT_ASSERT documents internal invariants (compiled out in NDEBUG builds);
// EZRT_CHECK enforces preconditions at API boundaries and is always active.
// Both throw ezrt::ContractViolation so tests can observe failures without
// aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace ezrt {

/// Thrown when a precondition or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const std::string& message);
}  // namespace detail

}  // namespace ezrt

#define EZRT_CHECK(expr, message)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::ezrt::detail::contract_failure("precondition", #expr, __FILE__, \
                                       __LINE__, (message));            \
    }                                                                   \
  } while (false)

#ifdef NDEBUG
#define EZRT_ASSERT(expr, message) \
  do {                             \
  } while (false)
#else
#define EZRT_ASSERT(expr, message)                                   \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::ezrt::detail::contract_failure("invariant", #expr, __FILE__, \
                                       __LINE__, (message));         \
    }                                                                \
  } while (false)
#endif
