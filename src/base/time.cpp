#include "base/time.hpp"

#include <sstream>

namespace ezrt {

std::string TimeInterval::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TimeInterval& interval) {
  os << '[' << interval.eft() << ',';
  if (interval.bounded()) {
    os << interval.lft();
  } else {
    os << "inf";
  }
  os << ']';
  return os;
}

}  // namespace ezrt
