// Minimal Result<T> / Error types for recoverable failures.
//
// Recoverable conditions (malformed XML, inconsistent specifications,
// infeasible schedules) are reported by value through Result<T>;
// programming errors use the contract macros in assert.hpp instead.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

#include "base/assert.hpp"

namespace ezrt {

/// Machine-readable failure category.
enum class ErrorCode {
  kInvalidArgument,   ///< caller provided inconsistent data
  kParseError,        ///< malformed input document
  kValidationError,   ///< specification violates the model's constraints
  kInfeasible,        ///< no feasible schedule exists under the search mode
  kLimitExceeded,     ///< a configured resource bound was hit
  kCancelled,         ///< the operation was cancelled cooperatively
  kUnsupported,       ///< feature not available for the requested target
  kIoError,           ///< filesystem failure
  kInternal,          ///< invariant-adjacent failure surfaced as a value
};

[[nodiscard]] const char* to_string(ErrorCode code);

/// A failure: category plus human-readable context.
class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "<category>: <message>" for logs and exceptions.
  [[nodiscard]] std::string to_string() const;

 private:
  ErrorCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Error& error);

/// Either a value or an Error. A deliberately small subset of
/// std::expected (which libstdc++ 12 does not ship yet).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}          // NOLINT(*explicit*)
  Result(Error error) : storage_(std::move(error)) {}      // NOLINT(*explicit*)

  [[nodiscard]] bool ok() const {
    return std::holds_alternative<T>(storage_);
  }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    EZRT_CHECK(ok(), error_unchecked().to_string());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    EZRT_CHECK(ok(), error_unchecked().to_string());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    EZRT_CHECK(ok(), error_unchecked().to_string());
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] const Error& error() const {
    EZRT_CHECK(!ok(), "Result holds a value, not an error");
    return std::get<Error>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  [[nodiscard]] const Error& error_unchecked() const {
    return std::get<Error>(storage_);
  }
  std::variant<T, Error> storage_;
};

/// Result specialization for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;                                     // success
  Status(Error error) : error_(std::move(error)) {}       // NOLINT(*explicit*)

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    EZRT_CHECK(!ok(), "Status is OK, no error to read");
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

/// Convenience factories.
[[nodiscard]] inline Error make_error(ErrorCode code, std::string message) {
  return Error(code, std::move(message));
}

}  // namespace ezrt
