#include "base/strings.hpp"

#include <cctype>
#include <charconv>

namespace ezrt {

namespace {
[[nodiscard]] bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) {
    s.remove_prefix(1);
  }
  while (!s.empty() && is_space(s.back())) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

Result<std::uint64_t> parse_uint(std::string_view s) {
  s = trim(s);
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
    return make_error(ErrorCode::kParseError,
                      "not a non-negative integer: '" + std::string(s) + "'");
  }
  return value;
}

Result<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
    return make_error(ErrorCode::kParseError,
                      "not an integer: '" + std::string(s) + "'");
  }
  return value;
}

bool is_c_identifier(std::string_view name) {
  if (name.empty()) {
    return false;
  }
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
    return false;
  }
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

std::string sanitize_c_identifier(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    out.push_back(
        (std::isalnum(static_cast<unsigned char>(c)) || c == '_') ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), 't');
  }
  return out;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) {
    return std::string(s);
  }
  std::string out;
  out.reserve(s.size());
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

}  // namespace ezrt
