// Strong identifier types used across the ezRealtime libraries.
//
// All entity references (places, transitions, tasks, processors, ...) are
// index-based strong IDs: a thin wrapper around a 32-bit index with a tag
// type, so that a PlaceId cannot be passed where a TransitionId is expected.
// Containers indexed by an ID use IdVector, which only accepts the matching
// ID type as a subscript.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace ezrt {

/// A typed index. `Tag` is an empty struct unique to each entity kind.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;

  /// Sentinel for "no entity". Default-constructed IDs are invalid.
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  constexpr Id() = default;
  constexpr explicit Id(underlying_type value) : value_(value) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  underlying_type value_ = kInvalid;
};

struct PlaceTag {};
struct TransitionTag {};
struct TaskTag {};
struct ProcessorTag {};
struct MessageTag {};

using PlaceId = Id<PlaceTag>;
using TransitionId = Id<TransitionTag>;
using TaskId = Id<TaskTag>;
using ProcessorId = Id<ProcessorTag>;
using MessageId = Id<MessageTag>;

/// std::vector whose subscript operator is typed by an Id.
template <typename IdT, typename T>
class IdVector {
 public:
  using id_type = IdT;
  using value_type = T;

  IdVector() = default;
  explicit IdVector(std::size_t n, const T& init = T{}) : data_(n, init) {}

  [[nodiscard]] T& operator[](IdT id) { return data_[id.value()]; }
  [[nodiscard]] const T& operator[](IdT id) const { return data_[id.value()]; }

  /// Appends an element and returns its freshly minted ID.
  IdT push_back(T value) {
    data_.push_back(std::move(value));
    return IdT(static_cast<typename IdT::underlying_type>(data_.size() - 1));
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  void clear() { data_.clear(); }
  void resize(std::size_t n, const T& init = T{}) { data_.resize(n, init); }

  [[nodiscard]] auto begin() { return data_.begin(); }
  [[nodiscard]] auto end() { return data_.end(); }
  [[nodiscard]] auto begin() const { return data_.begin(); }
  [[nodiscard]] auto end() const { return data_.end(); }

  /// Access to the untyped storage (for hashing / serialization).
  [[nodiscard]] const std::vector<T>& raw() const { return data_; }
  [[nodiscard]] std::vector<T>& raw() { return data_; }

  /// Iterates IDs 0..size-1.
  class IdRange {
   public:
    explicit IdRange(std::size_t n) : n_(n) {}
    class iterator {
     public:
      explicit iterator(typename IdT::underlying_type v) : v_(v) {}
      IdT operator*() const { return IdT(v_); }
      iterator& operator++() {
        ++v_;
        return *this;
      }
      friend bool operator==(iterator, iterator) = default;

     private:
      typename IdT::underlying_type v_;
    };
    [[nodiscard]] iterator begin() const { return iterator(0); }
    [[nodiscard]] iterator end() const {
      return iterator(static_cast<typename IdT::underlying_type>(n_));
    }

   private:
    std::size_t n_;
  };

  [[nodiscard]] IdRange ids() const { return IdRange(data_.size()); }

 private:
  std::vector<T> data_;
};

}  // namespace ezrt

template <typename Tag>
struct std::hash<ezrt::Id<Tag>> {
  std::size_t operator()(ezrt::Id<Tag> id) const noexcept {
    return std::hash<typename ezrt::Id<Tag>::underlying_type>{}(id.value());
  }
};
