// Checked integer arithmetic for hyper-period computation.
//
// Pre-runtime scheduling unrolls every task over the schedule period
// PS = lcm(periods) (§3.3). Unfortunate period choices make PS overflow
// 64 bits, so lcm/multiplication are checked and reported as errors rather
// than silently wrapping.
#pragma once

#include <cstdint>
#include <numeric>
#include <span>

#include "base/result.hpp"
#include "base/time.hpp"

namespace ezrt {

/// Greatest common divisor; gcd(0, x) == x.
[[nodiscard]] constexpr Time gcd(Time a, Time b) { return std::gcd(a, b); }

/// a * b, or kLimitExceeded on 64-bit overflow.
[[nodiscard]] Result<Time> checked_mul(Time a, Time b);

/// a + b, or kLimitExceeded on 64-bit overflow.
[[nodiscard]] Result<Time> checked_add(Time a, Time b);

/// Least common multiple of two positive values, overflow-checked.
[[nodiscard]] Result<Time> checked_lcm(Time a, Time b);

/// Least common multiple of a non-empty set of positive periods —
/// the schedule period (hyper-period) PS of §3.3.
[[nodiscard]] Result<Time> schedule_period(std::span<const Time> periods);

/// Ceiling division for positive divisors.
[[nodiscard]] constexpr Time ceil_div(Time a, Time b) {
  return (a + b - 1) / b;
}

}  // namespace ezrt
