// Hashing utilities for TLTS state deduplication.
//
// The scheduler keeps a visited set of (marking, clock-vector) states; the
// hot path hashes two dense integer vectors. We use a FNV-1a-based combiner
// with a final avalanche mix, which is deterministic across runs (benchmark
// state counts must be reproducible).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ezrt {

/// FNV-1a offset basis (64-bit).
inline constexpr std::uint64_t kHashSeed = 0xcbf29ce484222325ull;

/// Mixes one 64-bit word into a running hash.
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t h,
                                               std::uint64_t v) {
  // FNV-1a on the 8 bytes of v, unrolled via multiply; then a xorshift to
  // spread low-entropy counter values (markings are mostly 0/1).
  h ^= v;
  h *= 0x100000001b3ull;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ull;
  return h;
}

/// XOR-combinable per-cell hash (Zobrist with computed keys): a full
/// splitmix64-style avalanche over (index, value, seed). A digest formed as
/// XOR of cells can be updated incrementally when one cell changes —
/// X ^= hash_cell(i, old) ^ hash_cell(i, new) — which the scheduler's
/// state fingerprint relies on (docs/semantics.md §5).
[[nodiscard]] constexpr std::uint64_t hash_cell(std::uint64_t index,
                                                std::uint64_t value,
                                                std::uint64_t seed) {
  std::uint64_t z =
      seed + index * 0x9e3779b97f4a7c15ull + value * 0xd1b54a32d192ed03ull;
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z;
}

/// Hashes a span of integral values.
template <typename T>
[[nodiscard]] constexpr std::uint64_t hash_span(std::span<const T> values,
                                                std::uint64_t seed =
                                                    kHashSeed) {
  std::uint64_t h = seed;
  for (const T& v : values) {
    h = hash_mix(h, static_cast<std::uint64_t>(v));
  }
  // Finalizer (splitmix64 tail) so short vectors still avalanche.
  h ^= h >> 31;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

}  // namespace ezrt
