// Discrete-time values and static firing intervals for time Petri nets.
//
// The paper's computational model (§3.1) uses a time-discrete semantics:
// all phases, releases, computation times, deadlines and periods are
// non-negative integers, and a transition's timing constraint is a closed
// interval I(t) = [EFT(t), LFT(t)] with EFT <= LFT. LFT may be unbounded
// (classic TPN "infinity"); the pre-runtime building blocks only produce
// bounded intervals, but the TPN core supports both.
#pragma once

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

#include "base/assert.hpp"

namespace ezrt {

/// A point in (or duration of) discrete model time. One unit is the task
/// granularity chosen by the specification (the paper calls it a TTU,
/// task time unit).
using Time = std::uint64_t;

/// Unbounded latest firing time.
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();

/// Static firing interval [eft, lft] of a transition (Merlin & Faber).
class TimeInterval {
 public:
  constexpr TimeInterval() = default;

  constexpr TimeInterval(Time eft, Time lft) : eft_(eft), lft_(lft) {
    EZRT_CHECK(eft <= lft, "time interval requires EFT <= LFT");
  }

  /// The punctual interval [v, v].
  [[nodiscard]] static constexpr TimeInterval exactly(Time v) {
    return TimeInterval(v, v);
  }

  /// The interval [eft, infinity).
  [[nodiscard]] static constexpr TimeInterval at_least(Time eft) {
    return TimeInterval(eft, kTimeInfinity);
  }

  [[nodiscard]] constexpr Time eft() const { return eft_; }
  [[nodiscard]] constexpr Time lft() const { return lft_; }
  [[nodiscard]] constexpr bool bounded() const {
    return lft_ != kTimeInfinity;
  }
  [[nodiscard]] constexpr bool punctual() const { return eft_ == lft_; }
  [[nodiscard]] constexpr bool is_zero() const {
    return eft_ == 0 && lft_ == 0;
  }
  [[nodiscard]] constexpr bool contains(Time v) const {
    return eft_ <= v && v <= lft_;
  }

  friend constexpr bool operator==(TimeInterval, TimeInterval) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  Time eft_ = 0;
  Time lft_ = 0;
};

std::ostream& operator<<(std::ostream& os, const TimeInterval& interval);

}  // namespace ezrt
