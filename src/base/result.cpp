#include "base/result.hpp"

namespace ezrt {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kParseError:
      return "parse-error";
    case ErrorCode::kValidationError:
      return "validation-error";
    case ErrorCode::kInfeasible:
      return "infeasible";
    case ErrorCode::kLimitExceeded:
      return "limit-exceeded";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kUnsupported:
      return "unsupported";
    case ErrorCode::kIoError:
      return "io-error";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out = ezrt::to_string(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Error& error) {
  return os << error.to_string();
}

}  // namespace ezrt
