#include "base/assert.hpp"

#include <sstream>

namespace ezrt::detail {

void contract_failure(const char* kind, const char* expr, const char* file,
                      int line, const std::string& message) {
  std::ostringstream os;
  os << kind << " violated: `" << expr << "` at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw ContractViolation(os.str());
}

}  // namespace ezrt::detail
