// Cooperative cancellation (docs/robustness.md).
//
// A CancelToken is the one-way "please stop" switch shared between a
// requester (a SIGINT handler, a supervising thread, a test) and the
// long-running engines that poll it. request() is async-signal-safe and
// thread-safe: it is a single relaxed atomic store, so the CLI installs a
// signal handler that does nothing but request() a file-scope token.
// Pollers observe the request at their next guard check and unwind with a
// kCancelled verdict instead of tearing the process down, so partial
// statistics and run reports still get written.
#pragma once

#include <atomic>

namespace ezrt::base {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Async-signal-safe; idempotent.
  void request() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Re-arms the token (between runs of a long-lived process; not safe to
  /// race with request()).
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace ezrt::base
