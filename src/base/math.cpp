#include "base/math.hpp"

#include <string>

namespace ezrt {

Result<Time> checked_mul(Time a, Time b) {
  Time out = 0;
  if (__builtin_mul_overflow(a, b, &out) || out == kTimeInfinity) {
    return make_error(ErrorCode::kLimitExceeded,
                      "multiplication overflow: " + std::to_string(a) + " * " +
                          std::to_string(b));
  }
  return out;
}

Result<Time> checked_add(Time a, Time b) {
  Time out = 0;
  if (__builtin_add_overflow(a, b, &out) || out == kTimeInfinity) {
    return make_error(ErrorCode::kLimitExceeded,
                      "addition overflow: " + std::to_string(a) + " + " +
                          std::to_string(b));
  }
  return out;
}

Result<Time> checked_lcm(Time a, Time b) {
  if (a == 0 || b == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "lcm requires positive operands");
  }
  return checked_mul(a / gcd(a, b), b);
}

Result<Time> schedule_period(std::span<const Time> periods) {
  if (periods.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "schedule period of an empty task set is undefined");
  }
  Time ps = 1;
  for (Time p : periods) {
    auto next = checked_lcm(ps, p);
    if (!next.ok()) {
      return next;
    }
    ps = next.value();
  }
  return ps;
}

}  // namespace ezrt
