// Reproducible synthetic task-set generation for tests and benchmarks.
//
// The paper evaluates on one case study; the extended evaluation here
// (scaling sweeps, pre-runtime vs on-line baselines, property tests) needs
// many task sets with controlled parameters. Utilizations follow the
// standard UUniFast scheme; periods are drawn from a caller-provided pool
// (harmonic by default so hyper-periods stay small); precedence edges are
// generated acyclically between same-period tasks (1:1 instance matching);
// exclusion pairs are arbitrary. A deterministic xorshift PRNG makes every
// workload reproducible from its seed.
#pragma once

#include <cstdint>
#include <vector>

#include "base/result.hpp"
#include "spec/specification.hpp"

namespace ezrt::workload {

/// Deterministic 64-bit PRNG (xorshift*), independent of the standard
/// library so workloads are stable across platforms and releases.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  [[nodiscard]] std::uint64_t next();
  /// Uniform in [0, bound).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound);
  /// Uniform in [0, 1).
  [[nodiscard]] double uniform();

 private:
  std::uint64_t state_;
};

/// How tasks are mapped onto processors when `processors > 1`.
enum class Placement {
  /// Worst-fit decreasing by utilization: cores stay balanced and, with
  /// `messages == 0`, isolated — the classic partitioned scenario.
  kPartitioned,
  /// Uniformly random core per task: arbitrary load spread, precedence
  /// edges may couple cores — the global (bus-coupled) scenario.
  kGlobal,
};

struct WorkloadConfig {
  std::uint32_t tasks = 5;
  /// Target total processor utilization sum(c_i / p_i).
  double utilization = 0.5;
  /// Periods are drawn uniformly from this pool. Harmonic defaults keep
  /// the hyper-period equal to the largest period; an arbitrary
  /// (non-harmonic) pool exercises LCM hyper-periods.
  std::vector<Time> period_pool{100, 200, 400, 800};
  /// Fraction of tasks scheduled preemptively (the rest non-preemptive).
  double preemptive_fraction = 0.0;
  /// Deadline = c + x*(p - c) with x uniform in [deadline_min_factor, 1].
  double deadline_min_factor = 0.6;
  /// Random precedence edges between same-period tasks (kept acyclic).
  /// With kPartitioned placement the edges stay within one core.
  std::uint32_t precedence_edges = 0;
  /// Random symmetric exclusion pairs.
  std::uint32_t exclusion_pairs = 0;
  /// Processors to generate ("cpu0".."cpuN-1"). 1 reproduces the original
  /// mono-processor workloads byte-for-byte at equal seeds.
  std::uint32_t processors = 1;
  Placement placement = Placement::kPartitioned;
  /// Cross-core messages over the shared bus ("bus0"), connecting
  /// same-period tasks on different cores. Requires `processors > 1`.
  std::uint32_t messages = 0;
  /// Shared-synchronization budget K recorded on the specification
  /// (0 = unbounded; see docs/multiprocessor.md).
  std::uint32_t sync_budget = 0;
  std::uint64_t seed = 1;
};

/// Generates a validated specification; fails when the configuration is
/// unsatisfiable (e.g. utilization so low that some WCET would be zero is
/// clamped instead, but an empty period pool is an error).
[[nodiscard]] Result<spec::Specification> generate(
    const WorkloadConfig& config);

/// UUniFast: n utilization shares summing to `total`, each in (0, total).
[[nodiscard]] std::vector<double> uunifast(std::uint32_t n, double total,
                                           Rng& rng);

/// Canonical multi-processor evaluation scenario: `placement` crossed with
/// a harmonic ({100,200,400}) or arbitrary ({100,150,200,300}) period
/// pool. Global placement also couples the cores with cross-core messages
/// and a sync budget, so the bus and K-pool machinery is exercised.
[[nodiscard]] WorkloadConfig multiproc_scenario(Placement placement,
                                                bool harmonic,
                                                std::uint32_t processors,
                                                std::uint64_t seed);

/// The paper's Table 1 mine-pump specification (10 tasks; the §5 case
/// study). Exposed here because tests, benches and examples all use it.
[[nodiscard]] spec::Specification mine_pump_specification();

/// The dual-processor UAV autopilot (examples/uav_dual_processor.cpp,
/// checked in as examples/specs/uav_dual_processor.ezspec): a sensor CPU
/// feeds a control CPU over a CAN bus, with an exclusion pair and a
/// preemptive trajectory task on the control side. The multi-processor
/// end-to-end case (docs/multiprocessor.md). Requires the complete search
/// mode (PruningMode::kNone): the FT_P priority filter prunes away every
/// feasible interleaving of this set.
[[nodiscard]] spec::Specification uav_autopilot_specification();

/// Request mix for serve load generation (tools/loadgen, the BM_Serve_*
/// BENCH rows): `distinct` generated task sets with consecutive seeds,
/// plus the two checked-in case studies (mine pump, UAV autopilot) when
/// `include_examples` — the examples are cheap to schedule, so repeating
/// the mix exercises the schedule cache rather than saturating workers.
/// Deterministic in the config, like everything else here.
struct ServeMixConfig {
  std::uint32_t distinct = 4;
  std::uint32_t tasks = 4;
  double utilization = 0.4;
  std::uint64_t seed = 1;
  bool include_examples = true;
};

[[nodiscard]] std::vector<spec::Specification> serve_mix(
    const ServeMixConfig& config);

}  // namespace ezrt::workload
