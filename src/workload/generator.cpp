#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "base/assert.hpp"

namespace ezrt::workload {

Rng::Rng(std::uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15ull
                                                : seed) {}

std::uint64_t Rng::next() {
  // xorshift64* (Vigna); full 2^64-1 period, passes BigCrush small tests.
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 0x2545F4914F6CDD1Dull;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  EZRT_CHECK(bound > 0, "Rng::below requires a positive bound");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % bound);
  std::uint64_t value = next();
  while (value >= limit) {
    value = next();
  }
  return value % bound;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<double> uunifast(std::uint32_t n, double total, Rng& rng) {
  std::vector<double> shares;
  shares.reserve(n);
  double sum = total;
  for (std::uint32_t i = 1; i < n; ++i) {
    const double next_sum =
        sum * std::pow(rng.uniform(), 1.0 / static_cast<double>(n - i));
    shares.push_back(sum - next_sum);
    sum = next_sum;
  }
  shares.push_back(sum);
  return shares;
}

Result<spec::Specification> generate(const WorkloadConfig& config) {
  if (config.tasks == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "workload needs at least one task");
  }
  if (config.period_pool.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty period pool");
  }
  if (config.utilization <= 0.0 || config.utilization > 1.0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "utilization must be in (0, 1]");
  }

  Rng rng(config.seed);
  spec::Specification s("workload-" + std::to_string(config.seed));
  s.add_processor("cpu0");

  const std::vector<double> shares =
      uunifast(config.tasks, config.utilization, rng);

  for (std::uint32_t i = 0; i < config.tasks; ++i) {
    const Time period =
        config.period_pool[rng.below(config.period_pool.size())];
    // WCET from the utilization share, clamped into [1, period].
    Time wcet = static_cast<Time>(
        std::llround(shares[i] * static_cast<double>(period)));
    wcet = std::clamp<Time>(wcet, 1, period);
    // Deadline between "tight" and "implicit" (= period).
    const double x = config.deadline_min_factor +
                     (1.0 - config.deadline_min_factor) * rng.uniform();
    Time deadline =
        wcet + static_cast<Time>(std::llround(
                   x * static_cast<double>(period - wcet)));
    deadline = std::clamp<Time>(deadline, wcet, period);

    spec::TimingConstraints timing;
    timing.computation = wcet;
    timing.deadline = deadline;
    timing.period = period;

    const bool preemptive = rng.uniform() < config.preemptive_fraction;
    s.add_task("T" + std::to_string(i + 1), timing,
               preemptive ? spec::SchedulingType::kPreemptive
                          : spec::SchedulingType::kNonPreemptive);
  }

  // Precedence edges: only between tasks of equal period (instances match
  // 1:1 inside the hyper-period) and only from a lower to a higher index,
  // which keeps the relation acyclic by construction.
  std::uint32_t edges_placed = 0;
  for (std::uint32_t attempt = 0;
       attempt < config.precedence_edges * 16 &&
       edges_placed < config.precedence_edges;
       ++attempt) {
    const auto a = static_cast<std::uint32_t>(rng.below(config.tasks));
    const auto b = static_cast<std::uint32_t>(rng.below(config.tasks));
    const std::uint32_t lo = std::min(a, b);
    const std::uint32_t hi = std::max(a, b);
    if (lo == hi) {
      continue;
    }
    const TaskId before(lo);
    const TaskId after(hi);
    if (s.task(before).timing.period != s.task(after).timing.period) {
      continue;
    }
    const auto& existing = s.task(before).precedes;
    if (std::find(existing.begin(), existing.end(), after) !=
        existing.end()) {
      continue;
    }
    s.add_precedence(before, after);
    ++edges_placed;
  }

  std::uint32_t pairs_placed = 0;
  for (std::uint32_t attempt = 0;
       attempt < config.exclusion_pairs * 16 &&
       pairs_placed < config.exclusion_pairs;
       ++attempt) {
    const auto a = static_cast<std::uint32_t>(rng.below(config.tasks));
    const auto b = static_cast<std::uint32_t>(rng.below(config.tasks));
    if (a == b) {
      continue;
    }
    const TaskId ta(a);
    const TaskId tb(b);
    const auto& existing = s.task(ta).excludes;
    if (std::find(existing.begin(), existing.end(), tb) != existing.end()) {
      continue;
    }
    s.add_exclusion(ta, tb);
    ++pairs_placed;
  }

  if (auto status = s.validate(); !status.ok()) {
    return status.error();
  }
  return s;
}

spec::Specification mine_pump_specification() {
  // Paper Table 1: computation / deadline / period per task (phase and
  // release are 0; the case study is non-preemptive).
  spec::Specification s("mine-pump");
  s.add_processor("cpu");
  struct Row {
    const char* name;
    Time computation, deadline, period;
  };
  constexpr Row kRows[] = {
      {"PMC", 10, 20, 80},     {"WFC", 15, 500, 500},
      {"RLWH", 1, 1000, 1000}, {"CH4H", 25, 500, 500},
      {"CH4S", 5, 100, 500},   {"COH", 15, 100, 2500},
      {"AFH", 15, 200, 6000},  {"WFH", 15, 300, 500},
      {"PDL", 15, 500, 500},   {"SDL", 10, 500, 500},
  };
  for (const Row& row : kRows) {
    s.add_task(row.name,
               spec::TimingConstraints{0, 0, row.computation, row.deadline,
                                       row.period});
  }
  return s;
}

}  // namespace ezrt::workload
