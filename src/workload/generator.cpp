#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "base/assert.hpp"

namespace ezrt::workload {

Rng::Rng(std::uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15ull
                                                : seed) {}

std::uint64_t Rng::next() {
  // xorshift64* (Vigna); full 2^64-1 period, passes BigCrush small tests.
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 0x2545F4914F6CDD1Dull;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  EZRT_CHECK(bound > 0, "Rng::below requires a positive bound");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % bound);
  std::uint64_t value = next();
  while (value >= limit) {
    value = next();
  }
  return value % bound;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<double> uunifast(std::uint32_t n, double total, Rng& rng) {
  std::vector<double> shares;
  shares.reserve(n);
  double sum = total;
  for (std::uint32_t i = 1; i < n; ++i) {
    const double next_sum =
        sum * std::pow(rng.uniform(), 1.0 / static_cast<double>(n - i));
    shares.push_back(sum - next_sum);
    sum = next_sum;
  }
  shares.push_back(sum);
  return shares;
}

Result<spec::Specification> generate(const WorkloadConfig& config) {
  if (config.tasks == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "workload needs at least one task");
  }
  if (config.period_pool.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty period pool");
  }
  if (config.processors == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "workload needs at least one processor");
  }
  if (config.messages > 0 && config.processors < 2) {
    return make_error(ErrorCode::kInvalidArgument,
                      "cross-core messages need at least two processors");
  }
  // Total utilization is bounded by the core count; the mono-processor
  // bound (and its exact diagnostic) is unchanged.
  if (config.processors <= 1) {
    if (config.utilization <= 0.0 || config.utilization > 1.0) {
      return make_error(ErrorCode::kInvalidArgument,
                        "utilization must be in (0, 1]");
    }
  } else if (config.utilization <= 0.0 ||
             config.utilization > static_cast<double>(config.processors)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "utilization must be in (0, processors]");
  }

  Rng rng(config.seed);
  spec::Specification s("workload-" + std::to_string(config.seed));
  for (std::uint32_t p = 0; p < config.processors; ++p) {
    s.add_processor("cpu" + std::to_string(p));
  }

  const std::vector<double> shares =
      uunifast(config.tasks, config.utilization, rng);

  // Task-to-core mapping. Mono-processor workloads skip this entirely (no
  // extra PRNG draws), so equal seeds keep producing byte-identical specs.
  std::vector<ProcessorId> assigned(config.tasks);
  if (config.processors > 1) {
    if (config.placement == Placement::kGlobal) {
      for (std::uint32_t i = 0; i < config.tasks; ++i) {
        assigned[i] = ProcessorId(
            static_cast<std::uint32_t>(rng.below(config.processors)));
      }
    } else {
      // Worst-fit decreasing by utilization share: deterministic, no PRNG.
      std::vector<std::uint32_t> order(config.tasks);
      for (std::uint32_t i = 0; i < config.tasks; ++i) {
        order[i] = i;
      }
      std::stable_sort(order.begin(), order.end(),
                       [&shares](std::uint32_t a, std::uint32_t b) {
                         return shares[a] > shares[b];
                       });
      std::vector<double> load(config.processors, 0.0);
      for (std::uint32_t i : order) {
        const auto core = static_cast<std::uint32_t>(std::distance(
            load.begin(), std::min_element(load.begin(), load.end())));
        assigned[i] = ProcessorId(core);
        load[core] += shares[i];
      }
    }
  }

  for (std::uint32_t i = 0; i < config.tasks; ++i) {
    const Time period =
        config.period_pool[rng.below(config.period_pool.size())];
    // WCET from the utilization share, clamped into [1, period].
    Time wcet = static_cast<Time>(
        std::llround(shares[i] * static_cast<double>(period)));
    wcet = std::clamp<Time>(wcet, 1, period);
    // Deadline between "tight" and "implicit" (= period).
    const double x = config.deadline_min_factor +
                     (1.0 - config.deadline_min_factor) * rng.uniform();
    Time deadline =
        wcet + static_cast<Time>(std::llround(
                   x * static_cast<double>(period - wcet)));
    deadline = std::clamp<Time>(deadline, wcet, period);

    spec::TimingConstraints timing;
    timing.computation = wcet;
    timing.deadline = deadline;
    timing.period = period;

    const bool preemptive = rng.uniform() < config.preemptive_fraction;
    spec::Task t;
    t.name = "T" + std::to_string(i + 1);
    t.timing = timing;
    t.scheduling = preemptive ? spec::SchedulingType::kPreemptive
                              : spec::SchedulingType::kNonPreemptive;
    t.processor = assigned[i];  // invalid when mono: defaults to cpu0
    s.add_task(std::move(t));
  }

  // Precedence edges: only between tasks of equal period (instances match
  // 1:1 inside the hyper-period) and only from a lower to a higher index,
  // which keeps the relation acyclic by construction.
  std::uint32_t edges_placed = 0;
  for (std::uint32_t attempt = 0;
       attempt < config.precedence_edges * 16 &&
       edges_placed < config.precedence_edges;
       ++attempt) {
    const auto a = static_cast<std::uint32_t>(rng.below(config.tasks));
    const auto b = static_cast<std::uint32_t>(rng.below(config.tasks));
    const std::uint32_t lo = std::min(a, b);
    const std::uint32_t hi = std::max(a, b);
    if (lo == hi) {
      continue;
    }
    const TaskId before(lo);
    const TaskId after(hi);
    if (s.task(before).timing.period != s.task(after).timing.period) {
      continue;
    }
    if (config.processors > 1 &&
        config.placement == Placement::kPartitioned &&
        s.task(before).processor != s.task(after).processor) {
      continue;  // partitioned scenarios keep cores isolated
    }
    const auto& existing = s.task(before).precedes;
    if (std::find(existing.begin(), existing.end(), after) !=
        existing.end()) {
      continue;
    }
    s.add_precedence(before, after);
    ++edges_placed;
  }

  std::uint32_t pairs_placed = 0;
  for (std::uint32_t attempt = 0;
       attempt < config.exclusion_pairs * 16 &&
       pairs_placed < config.exclusion_pairs;
       ++attempt) {
    const auto a = static_cast<std::uint32_t>(rng.below(config.tasks));
    const auto b = static_cast<std::uint32_t>(rng.below(config.tasks));
    if (a == b) {
      continue;
    }
    const TaskId ta(a);
    const TaskId tb(b);
    const auto& existing = s.task(ta).excludes;
    if (std::find(existing.begin(), existing.end(), tb) != existing.end()) {
      continue;
    }
    s.add_exclusion(ta, tb);
    ++pairs_placed;
  }

  // Cross-core messages: same-period sender/receiver on different cores,
  // one channel per ordered pair, all sharing the single bus "bus0".
  std::uint32_t messages_placed = 0;
  for (std::uint32_t attempt = 0;
       attempt < config.messages * 16 && messages_placed < config.messages;
       ++attempt) {
    const auto a = static_cast<std::uint32_t>(rng.below(config.tasks));
    const auto b = static_cast<std::uint32_t>(rng.below(config.tasks));
    if (a == b) {
      continue;
    }
    const TaskId sender(a);
    const TaskId receiver(b);
    if (s.task(sender).processor == s.task(receiver).processor) {
      continue;
    }
    if (s.task(sender).timing.period != s.task(receiver).timing.period) {
      continue;
    }
    bool duplicate = false;
    for (MessageId mid : s.task(sender).precedes_msgs) {
      duplicate = duplicate || s.message(mid).receiver == receiver;
    }
    if (duplicate) {
      continue;
    }
    spec::Message m;
    m.name = "M" + std::to_string(messages_placed + 1);
    m.bus = "bus0";
    m.grant_bus = 1;
    m.communication = static_cast<Time>(
        1 + rng.below(1 + s.task(sender).timing.period / 100));
    const MessageId mid = s.add_message(std::move(m));
    s.connect_message(sender, mid, receiver);
    ++messages_placed;
  }

  if (config.sync_budget > 0) {
    s.set_sync_budget(config.sync_budget);
  }

  if (auto status = s.validate(); !status.ok()) {
    return status.error();
  }
  return s;
}

WorkloadConfig multiproc_scenario(Placement placement, bool harmonic,
                                  std::uint32_t processors,
                                  std::uint64_t seed) {
  WorkloadConfig config;
  config.tasks = 3 * processors;
  config.processors = processors;
  config.placement = placement;
  config.utilization = 0.45 * static_cast<double>(processors);
  config.period_pool =
      harmonic ? std::vector<Time>{100, 200, 400}
               : std::vector<Time>{100, 150, 200, 300};
  config.precedence_edges = 2;
  config.seed = seed;
  if (placement == Placement::kGlobal) {
    config.messages = processors - 1;
    config.sync_budget = 2;
  }
  return config;
}

spec::Specification mine_pump_specification() {
  // Paper Table 1: computation / deadline / period per task (phase and
  // release are 0; the case study is non-preemptive).
  spec::Specification s("mine-pump");
  s.add_processor("cpu");
  struct Row {
    const char* name;
    Time computation, deadline, period;
  };
  constexpr Row kRows[] = {
      {"PMC", 10, 20, 80},     {"WFC", 15, 500, 500},
      {"RLWH", 1, 1000, 1000}, {"CH4H", 25, 500, 500},
      {"CH4S", 5, 100, 500},   {"COH", 15, 100, 2500},
      {"AFH", 15, 200, 6000},  {"WFH", 15, 300, 500},
      {"PDL", 15, 500, 500},   {"SDL", 10, 500, 500},
  };
  for (const Row& row : kRows) {
    s.add_task(row.name,
               spec::TimingConstraints{0, 0, row.computation, row.deadline,
                                       row.period});
  }
  return s;
}

spec::Specification uav_autopilot_specification() {
  spec::Specification system("uav-autopilot");
  const ProcessorId sensor_cpu = system.add_processor("sensor-cpu");
  const ProcessorId control_cpu = system.add_processor("control-cpu");

  auto add = [&system](const char* name, ProcessorId cpu,
                       spec::TimingConstraints timing,
                       spec::SchedulingType mode =
                           spec::SchedulingType::kNonPreemptive) {
    spec::Task task;
    task.name = name;
    task.timing = timing;
    task.scheduling = mode;
    task.processor = cpu;
    return system.add_task(std::move(task));
  };

  // Sensor CPU: IMU sampling and attitude fusion every 10 ms.
  const TaskId imu = add("imu", sensor_cpu, {0, 0, 2, 6, 10});
  const TaskId fusion = add("fusion", sensor_cpu, {0, 0, 3, 10, 10});
  system.add_precedence(imu, fusion);

  // Control CPU: trajectory planning (slow, preemptive), attitude control
  // (fast) and ESC output; trajectory and telemetry share the log flash.
  const TaskId trajectory = add("trajectory", control_cpu, {0, 0, 6, 20, 20},
                                spec::SchedulingType::kPreemptive);
  const TaskId attitude = add("attitude", control_cpu, {0, 0, 2, 10, 10});
  const TaskId esc = add("esc_out", control_cpu, {0, 0, 1, 10, 10},
                         spec::SchedulingType::kPreemptive);
  const TaskId telemetry = add("telemetry", control_cpu, {0, 0, 2, 20, 20},
                               spec::SchedulingType::kPreemptive);
  system.add_precedence(attitude, esc);
  system.add_exclusion(trajectory, telemetry);

  // Fused attitude estimate crosses to the control CPU on the CAN bus.
  spec::Message estimate;
  estimate.name = "attitude_estimate";
  estimate.bus = "can0";
  estimate.grant_bus = 1;
  estimate.communication = 2;
  const MessageId msg = system.add_message(std::move(estimate));
  system.connect_message(fusion, msg, attitude);
  return system;
}

std::vector<spec::Specification> serve_mix(const ServeMixConfig& config) {
  std::vector<spec::Specification> mix;
  for (std::uint32_t i = 0; i < config.distinct; ++i) {
    WorkloadConfig workload;
    workload.tasks = config.tasks;
    workload.utilization = config.utilization;
    workload.seed = config.seed + i;
    auto generated = generate(workload);
    if (generated.ok()) {
      mix.push_back(std::move(generated).value());
    }
    // Unsatisfiable seeds are simply skipped: the mix is a load shape,
    // not a coverage contract, and generate() already clamps the common
    // degenerate cases.
  }
  if (config.include_examples) {
    mix.push_back(mine_pump_specification());
    mix.push_back(uav_autopilot_specification());
  }
  return mix;
}

}  // namespace ezrt::workload
