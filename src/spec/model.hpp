// Specification metamodel value types (paper §3.2 and Fig 5).
//
// These mirror the Ecore classes of the ezRealtime DSML: EzRTSpecC, TaskC,
// ProcessorC, MessageC, SourceCodeC and the SchedulingType enumeration.
// The aggregate root lives in specification.hpp.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "base/ids.hpp"
#include "base/time.hpp"

namespace ezrt::spec {

/// TaskC.sch — the per-task schedule method (§3.2(c)).
enum class SchedulingType : std::uint8_t {
  kNonPreemptive,  ///< "NP" in the DSL: runs [c,c] without interruption
  kPreemptive,     ///< "P": implicitly split into unit-time subtasks
};

[[nodiscard]] const char* to_string(SchedulingType type);

/// Timing constraints of a periodic task: (ph, r, c, d, p) with the paper's
/// well-formedness c <= d <= p; r, c, d are relative to the period start.
struct TimingConstraints {
  Time phase = 0;        ///< ph_i — delay of the first request after start
  Time release = 0;      ///< r_i — earliest start within the period
  Time computation = 0;  ///< c_i — worst-case execution time (WCET)
  Time deadline = 0;     ///< d_i — completion bound within the period
  Time period = 0;       ///< p_i — request periodicity
};

/// Behavioral specification: the C source for one task (SourceCodeC).
struct SourceCode {
  std::string identifier;
  std::string content;  ///< C code, spliced verbatim into the task function
};

/// TaskC. `precedes` / `excludes` hold the *outgoing* relation edges as
/// declared; exclusion is symmetric and is closed over by validate().
struct Task {
  std::string name;
  std::string identifier;  ///< stable external id (DSL documents)
  TimingConstraints timing;
  SchedulingType scheduling = SchedulingType::kNonPreemptive;
  std::uint32_t energy = 0;  ///< metamodel attribute; carried, not analyzed
  ProcessorId processor;     ///< executing processor (mono-CPU: the first)
  std::optional<SourceCode> code;
  std::vector<TaskId> precedes;        ///< this task PRECEDES those
  std::vector<TaskId> excludes;        ///< this task EXCLUDES those
  std::vector<MessageId> precedes_msgs;  ///< messages this task emits
};

/// ProcessorC — a processing resource. The paper is constrained to a
/// mono-processor architecture; multiple processors are supported as a
/// documented extension (each becomes its own resource place).
struct Processor {
  std::string name;
  std::string identifier;
};

/// MessageC — an inter-task communication carried by a bus. The message is
/// produced when its sender finishes and must be transferred (taking
/// `communication` time units on the bus) before the receiving task may be
/// released.
struct Message {
  std::string name;
  std::string identifier;
  std::string bus;          ///< bus resource name; messages on the same bus
                            ///< serialize against each other
  Time grant_bus = 0;       ///< bus arbitration delay before the transfer
  Time communication = 0;   ///< transfer duration on the bus
  TaskId receiver;          ///< the task this message PRECEDES
  TaskId sender;            ///< derived from Task::precedes_msgs
};

}  // namespace ezrt::spec
