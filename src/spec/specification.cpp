#include "spec/specification.hpp"

#include <algorithm>
#include <unordered_set>

#include "base/assert.hpp"
#include "base/math.hpp"

namespace ezrt::spec {

const char* to_string(SchedulingType type) {
  switch (type) {
    case SchedulingType::kNonPreemptive:
      return "non-preemptive";
    case SchedulingType::kPreemptive:
      return "preemptive";
  }
  return "unknown";
}

ProcessorId Specification::add_processor(Processor processor) {
  return processors_.push_back(std::move(processor));
}

ProcessorId Specification::add_processor(std::string name) {
  return add_processor(Processor{std::move(name), ""});
}

TaskId Specification::add_task(Task task) {
  if (!task.processor.valid() && !processors_.empty()) {
    task.processor = ProcessorId(0);
  }
  return tasks_.push_back(std::move(task));
}

TaskId Specification::add_task(std::string name, TimingConstraints timing,
                               SchedulingType scheduling) {
  Task t;
  t.name = std::move(name);
  t.timing = timing;
  t.scheduling = scheduling;
  return add_task(std::move(t));
}

MessageId Specification::add_message(Message message) {
  return messages_.push_back(std::move(message));
}

void Specification::add_precedence(TaskId before, TaskId after) {
  EZRT_CHECK(before.value() < tasks_.size() && after.value() < tasks_.size(),
             "precedence references an unknown task");
  EZRT_CHECK(before != after, "a task cannot precede itself");
  std::vector<TaskId>& out = tasks_[before].precedes;
  if (std::find(out.begin(), out.end(), after) == out.end()) {
    out.push_back(after);
  }
}

void Specification::add_exclusion(TaskId a, TaskId b) {
  EZRT_CHECK(a.value() < tasks_.size() && b.value() < tasks_.size(),
             "exclusion references an unknown task");
  EZRT_CHECK(a != b, "a task cannot exclude itself");
  auto link = [this](TaskId from, TaskId to) {
    std::vector<TaskId>& out = tasks_[from].excludes;
    if (std::find(out.begin(), out.end(), to) == out.end()) {
      out.push_back(to);
    }
  };
  // Symmetric by definition: A EXCLUDES B implies B EXCLUDES A (§3.2).
  link(a, b);
  link(b, a);
}

void Specification::set_task_code(TaskId task, std::string content) {
  EZRT_CHECK(task.value() < tasks_.size(), "unknown task");
  SourceCode code;
  code.content = std::move(content);
  tasks_[task].code = std::move(code);
}

void Specification::connect_message(TaskId sender, MessageId message,
                                    TaskId receiver) {
  EZRT_CHECK(sender.value() < tasks_.size(), "unknown sender task");
  EZRT_CHECK(receiver.value() < tasks_.size(), "unknown receiver task");
  EZRT_CHECK(message.value() < messages_.size(), "unknown message");
  messages_[message].sender = sender;
  messages_[message].receiver = receiver;
  std::vector<MessageId>& out = tasks_[sender].precedes_msgs;
  if (std::find(out.begin(), out.end(), message) == out.end()) {
    out.push_back(message);
  }
}

std::optional<TaskId> Specification::find_task(std::string_view name) const {
  for (TaskId id : tasks_.ids()) {
    if (tasks_[id].name == name) {
      return id;
    }
  }
  return std::nullopt;
}

Result<Time> Specification::schedule_period() const {
  std::vector<Time> periods;
  periods.reserve(tasks_.size());
  for (const Task& t : tasks_) {
    periods.push_back(t.timing.period);
  }
  return ezrt::schedule_period(periods);
}

Result<Time> Specification::instance_count(TaskId id) const {
  auto ps = schedule_period();
  if (!ps.ok()) {
    return ps;
  }
  const Time period = tasks_[id].timing.period;
  EZRT_ASSERT(period > 0 && ps.value() % period == 0,
              "schedule period must be a multiple of every task period");
  return ps.value() / period;
}

Result<Time> Specification::total_instances() const {
  auto ps = schedule_period();
  if (!ps.ok()) {
    return ps;
  }
  Time total = 0;
  for (const Task& t : tasks_) {
    total += ps.value() / t.timing.period;
  }
  return total;
}

double Specification::utilization() const {
  double u = 0.0;
  for (const Task& t : tasks_) {
    if (t.timing.period > 0) {
      u += static_cast<double>(t.timing.computation) /
           static_cast<double>(t.timing.period);
    }
  }
  return u;
}

double Specification::utilization(ProcessorId proc) const {
  double u = 0.0;
  for (const Task& t : tasks_) {
    if (t.processor == proc && t.timing.period > 0) {
      u += static_cast<double>(t.timing.computation) /
           static_cast<double>(t.timing.period);
    }
  }
  return u;
}

std::string Specification::mint_identifier() {
  return "ez" + std::to_string(next_identifier_++);
}

Status Specification::validate() {
  if (tasks_.empty()) {
    return make_error(ErrorCode::kValidationError,
                      "specification has no tasks");
  }
  if (processors_.empty()) {
    return make_error(ErrorCode::kValidationError,
                      "specification has no processors");
  }

  // Relation lists are sets; canonicalize their order so serialization is
  // deterministic regardless of declaration order (round-trip fixpoint).
  for (Task& t : tasks_) {
    std::sort(t.precedes.begin(), t.precedes.end());
    std::sort(t.excludes.begin(), t.excludes.end());
    std::sort(t.precedes_msgs.begin(), t.precedes_msgs.end());
  }

  // Identifier minting + name uniqueness.
  std::unordered_set<std::string> names;
  for (Task& t : tasks_) {
    if (t.identifier.empty()) {
      t.identifier = mint_identifier();
    }
    if (t.name.empty()) {
      return make_error(ErrorCode::kValidationError, "task with empty name");
    }
    if (!names.insert("t:" + t.name).second) {
      return make_error(ErrorCode::kValidationError,
                        "duplicate task name '" + t.name + "'");
    }
  }
  for (Processor& p : processors_) {
    if (p.identifier.empty()) {
      p.identifier = mint_identifier();
    }
    if (p.name.empty()) {
      return make_error(ErrorCode::kValidationError,
                        "processor with empty name");
    }
    if (!names.insert("p:" + p.name).second) {
      return make_error(ErrorCode::kValidationError,
                        "duplicate processor name '" + p.name + "'");
    }
  }
  for (Message& m : messages_) {
    if (m.identifier.empty()) {
      m.identifier = mint_identifier();
    }
    if (m.name.empty()) {
      return make_error(ErrorCode::kValidationError,
                        "message with empty name");
    }
    if (!names.insert("m:" + m.name).second) {
      return make_error(ErrorCode::kValidationError,
                        "duplicate message name '" + m.name + "'");
    }
  }

  // Per-task timing constraints (§3.2: c <= d <= p, non-empty release
  // window r <= d - c, and the computation must be positive).
  for (const Task& t : tasks_) {
    const TimingConstraints& c = t.timing;
    if (c.computation == 0) {
      return make_error(ErrorCode::kValidationError,
                        "task '" + t.name + "': computation time must be >= 1");
    }
    if (c.period == 0) {
      return make_error(ErrorCode::kValidationError,
                        "task '" + t.name + "': period must be >= 1");
    }
    if (!(c.computation <= c.deadline && c.deadline <= c.period)) {
      return make_error(ErrorCode::kValidationError,
                        "task '" + t.name +
                            "': requires c <= d <= p (got c=" +
                            std::to_string(c.computation) +
                            ", d=" + std::to_string(c.deadline) +
                            ", p=" + std::to_string(c.period) + ")");
    }
    if (c.release + c.computation > c.deadline) {
      return make_error(ErrorCode::kValidationError,
                        "task '" + t.name +
                            "': release window [r, d-c] is empty (r=" +
                            std::to_string(c.release) + " > d-c=" +
                            std::to_string(c.deadline - c.computation) + ")");
    }
    if (!t.processor.valid() ||
        t.processor.value() >= processors_.size()) {
      return make_error(ErrorCode::kValidationError,
                        "task '" + t.name +
                            "' is not assigned to a known processor");
    }
  }

  // Relation sanity. Exclusion symmetry is established by add_exclusion;
  // re-check here to guard specs deserialized from documents.
  for (TaskId id : tasks_.ids()) {
    const Task& t = tasks_[id];
    for (TaskId other : t.precedes) {
      if (other.value() >= tasks_.size() || other == id) {
        return make_error(ErrorCode::kValidationError,
                          "task '" + t.name + "': bad precedence target");
      }
    }
    for (TaskId other : t.excludes) {
      if (other.value() >= tasks_.size() || other == id) {
        return make_error(ErrorCode::kValidationError,
                          "task '" + t.name + "': bad exclusion target");
      }
      const std::vector<TaskId>& back = tasks_[other].excludes;
      if (std::find(back.begin(), back.end(), id) == back.end()) {
        return make_error(ErrorCode::kValidationError,
                          "exclusion between '" + t.name + "' and '" +
                              tasks_[other].name + "' is not symmetric");
      }
    }
  }

  // Precedence acyclicity (a cycle can never be scheduled): iterative
  // three-color DFS over the precedence edges.
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(tasks_.size(), Color::kWhite);
  for (TaskId root : tasks_.ids()) {
    if (color[root.value()] != Color::kWhite) {
      continue;
    }
    std::vector<std::pair<TaskId, std::size_t>> stack{{root, 0}};
    color[root.value()] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, edge] = stack.back();
      const std::vector<TaskId>& next = tasks_[node].precedes;
      if (edge == next.size()) {
        color[node.value()] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const TaskId child = next[edge++];
      if (color[child.value()] == Color::kGray) {
        return make_error(ErrorCode::kValidationError,
                          "precedence cycle through task '" +
                              tasks_[child].name + "'");
      }
      if (color[child.value()] == Color::kWhite) {
        color[child.value()] = Color::kGray;
        stack.emplace_back(child, 0);
      }
    }
  }

  // Messages.
  for (const Message& m : messages_) {
    if (!m.sender.valid() || !m.receiver.valid()) {
      return make_error(ErrorCode::kValidationError,
                        "message '" + m.name +
                            "' is not connected to a sender and a receiver");
    }
    if (m.sender == m.receiver) {
      return make_error(ErrorCode::kValidationError,
                        "message '" + m.name + "' loops back to its sender");
    }
    if (m.bus.empty()) {
      return make_error(ErrorCode::kValidationError,
                        "message '" + m.name + "' names no bus");
    }
  }

  return Status();
}

}  // namespace ezrt::spec
