// The specification aggregate (EzRTSpecC): tasks, processors, messages,
// inter-task relations, and the derived quantities pre-runtime scheduling
// needs (schedule period, instance counts).
#pragma once

#include <string>
#include <vector>

#include "base/ids.hpp"
#include "base/result.hpp"
#include "spec/model.hpp"

namespace ezrt::spec {

class Specification {
 public:
  Specification() = default;
  explicit Specification(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// EzRTSpecC.dispOveh — whether generated code should account for
  /// dispatcher overhead (carried through to codegen).
  [[nodiscard]] bool dispatcher_overhead() const {
    return dispatcher_overhead_;
  }
  void set_dispatcher_overhead(bool v) { dispatcher_overhead_ = v; }

  /// Bounded pool of shared synchronization resources (K). While a task
  /// holds an exclusion lock or a message transfer occupies the bus, one
  /// pool token is consumed; schedules that would need more than K
  /// concurrently held synchronization resources are infeasible. 0 means
  /// unbounded (the paper's default — no pool place is built).
  [[nodiscard]] std::uint32_t sync_budget() const { return sync_budget_; }
  void set_sync_budget(std::uint32_t k) { sync_budget_ = k; }

  // -- Construction -------------------------------------------------------

  ProcessorId add_processor(Processor processor);
  ProcessorId add_processor(std::string name);

  /// Adds a task; if `task.processor` is invalid it is assigned to the
  /// first processor (the paper's mono-processor default).
  TaskId add_task(Task task);

  /// Convenience for the common case.
  TaskId add_task(std::string name, TimingConstraints timing,
                  SchedulingType scheduling = SchedulingType::kNonPreemptive);

  MessageId add_message(Message message);

  /// Declares `before` PRECEDES `after` (§3.2).
  void add_precedence(TaskId before, TaskId after);

  /// Declares `a` EXCLUDES `b`; the relation is symmetric (§3.2) and the
  /// closure is materialized immediately.
  void add_exclusion(TaskId a, TaskId b);

  /// Binds behavioral C source to a task.
  void set_task_code(TaskId task, std::string content);

  /// Routes a message: sender -> message -> receiver.
  void connect_message(TaskId sender, MessageId message, TaskId receiver);

  // -- Access -------------------------------------------------------------

  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] std::size_t processor_count() const {
    return processors_.size();
  }
  [[nodiscard]] std::size_t message_count() const { return messages_.size(); }

  [[nodiscard]] const Task& task(TaskId id) const { return tasks_[id]; }
  [[nodiscard]] Task& task(TaskId id) { return tasks_[id]; }
  [[nodiscard]] const Processor& processor(ProcessorId id) const {
    return processors_[id];
  }
  [[nodiscard]] const Message& message(MessageId id) const {
    return messages_[id];
  }

  [[nodiscard]] auto task_ids() const { return tasks_.ids(); }
  [[nodiscard]] auto processor_ids() const { return processors_.ids(); }
  [[nodiscard]] auto message_ids() const { return messages_.ids(); }

  [[nodiscard]] std::optional<TaskId> find_task(std::string_view name) const;

  // -- Derived quantities --------------------------------------------------

  /// PS = lcm of all task periods (§3.3); error on overflow/empty set.
  [[nodiscard]] Result<Time> schedule_period() const;

  /// N(t_i) = PS / p_i — instances of the task inside the schedule period.
  [[nodiscard]] Result<Time> instance_count(TaskId id) const;

  /// Sum of N(t_i) over all tasks (the paper's "782 task instances").
  [[nodiscard]] Result<Time> total_instances() const;

  /// Processor utilization sum(c_i / p_i); > 1.0 is trivially infeasible on
  /// one processor.
  [[nodiscard]] double utilization() const;

  /// Utilization restricted to tasks assigned to `proc`; > 1.0 makes the
  /// partition trivially infeasible regardless of the other processors.
  [[nodiscard]] double utilization(ProcessorId proc) const;

  /// Semantic validation (§3.2 constraints):
  ///   * at least one task and one processor;
  ///   * unique, non-empty task/processor/message names;
  ///   * c >= 1 and c <= d <= p per task;
  ///   * r + c <= d (the release window [r, d-c] must be non-empty);
  ///   * relations reference existing, distinct tasks;
  ///   * exclusion is symmetric (enforced by construction, re-checked);
  ///   * precedence is acyclic;
  ///   * messages have a sender and a receiver, and do not self-loop.
  /// Fills in missing identifiers ("ez<n>") before checking.
  [[nodiscard]] Status validate();

 private:
  std::string name_ = "untitled";
  bool dispatcher_overhead_ = false;
  std::uint32_t sync_budget_ = 0;
  IdVector<TaskId, Task> tasks_;
  IdVector<ProcessorId, Processor> processors_;
  IdVector<MessageId, Message> messages_;
  std::uint64_t next_identifier_ = 1;

  [[nodiscard]] std::string mint_identifier();
};

}  // namespace ezrt::spec
