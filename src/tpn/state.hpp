// TLTS states: (marking, clock vector) pairs (paper §3.1).
//
// The semantics of a TPN is a timed labeled transition system whose states
// are S ⊆ (M × C). The clock vector c assigns every *enabled* transition
// the time elapsed since it last became enabled; disabled transitions are
// canonically stored as clock 0 so that structurally equal states hash
// equally.
#pragma once

#include <cstdint>
#include <vector>

#include "base/hash.hpp"
#include "base/time.hpp"
#include "tpn/marking.hpp"
#include "tpn/net.hpp"

namespace ezrt::tpn {

class State {
 public:
  State() = default;

  /// The initial state s0 = (m0, 0).
  [[nodiscard]] static State initial(const TimePetriNet& net);

  [[nodiscard]] const Marking& marking() const { return marking_; }
  [[nodiscard]] Marking& marking() { return marking_; }

  [[nodiscard]] Time clock(TransitionId t) const {
    return clocks_[t.value()];
  }
  void set_clock(TransitionId t, Time value) { clocks_[t.value()] = value; }

  [[nodiscard]] std::size_t clock_count() const { return clocks_.size(); }

  /// Model time elapsed since s0 along the path that produced this state.
  /// Not part of state identity (two interleavings reaching the same
  /// marking+clocks at different absolute times are the same TLTS state),
  /// but kept here because schedule extraction needs absolute times.
  [[nodiscard]] Time elapsed() const { return elapsed_; }
  void set_elapsed(Time t) { elapsed_ = t; }

  /// Hash over marking and clocks (identity excludes `elapsed`).
  [[nodiscard]] std::uint64_t hash() const {
    return hash_mix(marking_.hash(),
                    hash_span<Time>({clocks_.data(), clocks_.size()}));
  }

  /// Identity comparison: marking + clocks.
  [[nodiscard]] bool same_timed_state(const State& other) const {
    return marking_ == other.marking_ && clocks_ == other.clocks_;
  }

 private:
  friend class Semantics;
  Marking marking_;
  std::vector<Time> clocks_;
  Time elapsed_ = 0;
};

}  // namespace ezrt::tpn
