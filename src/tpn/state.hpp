// TLTS states: (marking, clock vector) pairs (paper §3.1).
//
// The semantics of a TPN is a timed labeled transition system whose states
// are S ⊆ (M × C). The clock vector c assigns every *enabled* transition
// the time elapsed since it last became enabled; disabled transitions are
// canonically stored as clock 0 so that structurally equal states hash
// equally.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/hash.hpp"
#include "base/time.hpp"
#include "tpn/marking.hpp"
#include "tpn/net.hpp"

namespace ezrt::tpn {

/// 128-bit state identity digest for the scheduler's visited set: two
/// independent XORs of `hash_cell` values over every (place, tokens) and
/// (transition, clock) cell. XOR-combinable, so Semantics maintains it
/// incrementally across firings instead of rehashing the whole state.
struct StateDigest {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

inline constexpr std::uint64_t kDigestSeedA = kHashSeed;
inline constexpr std::uint64_t kDigestSeedB = 0x9e3779b97f4a7c15ull;
/// Separates the clock cells from the token cells in the digest's index
/// space (place i and transition i must not cancel each other out).
inline constexpr std::uint64_t kDigestClockDomain = 0x636c6f636b73ull;

class State {
 public:
  State() = default;

  /// The initial state s0 = (m0, 0).
  [[nodiscard]] static State initial(const TimePetriNet& net);

  [[nodiscard]] const Marking& marking() const { return marking_; }
  /// Mutable access drops the enabled-set cache: external marking edits
  /// (hand-built test states, IO) would silently invalidate it, and a
  /// missing cache merely costs one dense rescan on the next Semantics
  /// contact. Semantics itself maintains the cache through the firing
  /// rule and bypasses this accessor.
  [[nodiscard]] Marking& marking() {
    enabled_words_.clear();
    enabled_count_ = 0;
    digest_valid_ = false;
    return marking_;
  }

  [[nodiscard]] Time clock(TransitionId t) const {
    return clocks_[t.value()];
  }
  void set_clock(TransitionId t, Time value) {
    clocks_[t.value()] = value;
    digest_valid_ = false;
  }

  [[nodiscard]] std::size_t clock_count() const { return clocks_.size(); }

  /// Model time elapsed since s0 along the path that produced this state.
  /// Not part of state identity (two interleavings reaching the same
  /// marking+clocks at different absolute times are the same TLTS state),
  /// but kept here because schedule extraction needs absolute times.
  [[nodiscard]] Time elapsed() const { return elapsed_; }
  void set_elapsed(Time t) { elapsed_ = t; }

  [[nodiscard]] std::span<const Time> clocks() const {
    return {clocks_.data(), clocks_.size()};
  }

  // -- Enabled-set cache ---------------------------------------------------
  // Dense bitset over transitions, maintained incrementally by Semantics
  // (docs/semantics.md §5). Derived from the marking, so it is excluded
  // from hash/identity; empty means "not computed" (states built by hand
  // or whose marking was mutated externally), and any Semantics entry
  // point recomputes it from the marking on demand.

  [[nodiscard]] bool enabled_cache_valid() const {
    return !enabled_words_.empty();
  }
  /// Precondition: enabled_cache_valid().
  [[nodiscard]] bool cached_enabled(TransitionId t) const {
    return (enabled_words_[t.value() >> 6] >> (t.value() & 63)) & 1u;
  }
  /// Number of set bits; meaningful only while the cache is valid.
  [[nodiscard]] std::uint32_t enabled_count() const { return enabled_count_; }
  [[nodiscard]] std::span<const std::uint64_t> enabled_words() const {
    return {enabled_words_.data(), enabled_words_.size()};
  }

  // -- Identity digest -----------------------------------------------------

  [[nodiscard]] bool digest_valid() const { return digest_valid_; }

  /// Dense recomputation of the digest from marking + clocks (no caching).
  [[nodiscard]] StateDigest compute_digest() const {
    StateDigest d;
    const auto toks = marking_.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      d.a ^= hash_cell(i, toks[i], kDigestSeedA);
      d.b ^= hash_cell(i, toks[i], kDigestSeedB);
    }
    for (std::size_t i = 0; i < clocks_.size(); ++i) {
      d.a ^= hash_cell(i, clocks_[i], kDigestSeedA ^ kDigestClockDomain);
      d.b ^= hash_cell(i, clocks_[i], kDigestSeedB ^ kDigestClockDomain);
    }
    return d;
  }

  /// The maintained digest when valid, a dense recomputation otherwise.
  /// Both paths evaluate the same function, so a search mixing cached and
  /// cacheless states (or the incremental and reference engines) sees
  /// identical fingerprints for identical timed states.
  [[nodiscard]] StateDigest digest() const {
    return digest_valid_ ? StateDigest{digest_a_, digest_b_}
                         : compute_digest();
  }

  /// Hash over marking and clocks (identity excludes `elapsed`).
  [[nodiscard]] std::uint64_t hash() const {
    return hash_mix(marking_.hash(),
                    hash_span<Time>({clocks_.data(), clocks_.size()}));
  }

  /// Identity comparison: marking + clocks.
  [[nodiscard]] bool same_timed_state(const State& other) const {
    return marking_ == other.marking_ && clocks_ == other.clocks_;
  }

 private:
  friend class Semantics;

  void reset_enabled_cache(std::size_t transition_count) {
    enabled_words_.assign((transition_count + 63) / 64, 0);
    enabled_count_ = 0;
  }
  void set_enabled_bit(TransitionId t) {
    enabled_words_[t.value() >> 6] |= std::uint64_t{1} << (t.value() & 63);
    ++enabled_count_;
  }
  void clear_enabled_bit(TransitionId t) {
    enabled_words_[t.value() >> 6] &= ~(std::uint64_t{1} << (t.value() & 63));
    --enabled_count_;
  }
  void drop_enabled_cache() {
    enabled_words_.clear();
    enabled_count_ = 0;
  }

  void refresh_digest() {
    const StateDigest d = compute_digest();
    digest_a_ = d.a;
    digest_b_ = d.b;
    digest_valid_ = true;
  }
  void drop_digest() { digest_valid_ = false; }
  /// Folds a token-count change of place index `p` into the digest.
  void digest_token_update(std::size_t p, std::uint64_t before,
                           std::uint64_t after) {
    digest_a_ ^= hash_cell(p, before, kDigestSeedA) ^
                 hash_cell(p, after, kDigestSeedA);
    digest_b_ ^= hash_cell(p, before, kDigestSeedB) ^
                 hash_cell(p, after, kDigestSeedB);
  }
  /// Folds a clock change of transition index `t` into the digest.
  void digest_clock_update(std::size_t t, Time before, Time after) {
    digest_a_ ^= hash_cell(t, before, kDigestSeedA ^ kDigestClockDomain) ^
                 hash_cell(t, after, kDigestSeedA ^ kDigestClockDomain);
    digest_b_ ^= hash_cell(t, before, kDigestSeedB ^ kDigestClockDomain) ^
                 hash_cell(t, after, kDigestSeedB ^ kDigestClockDomain);
  }

  Marking marking_;
  std::vector<Time> clocks_;
  Time elapsed_ = 0;
  std::vector<std::uint64_t> enabled_words_;
  std::uint32_t enabled_count_ = 0;
  std::uint64_t digest_a_ = 0;
  std::uint64_t digest_b_ = 0;
  bool digest_valid_ = false;
};

}  // namespace ezrt::tpn
