#include "tpn/dot.hpp"

#include <sstream>

#include "base/strings.hpp"

namespace ezrt::tpn {

namespace {

/// DOT string literal escaping for labels.
[[nodiscard]] std::string escape(const std::string& s) {
  return replace_all(replace_all(s, "\\", "\\\\"), "\"", "\\\"");
}

[[nodiscard]] const char* place_style(PlaceRole role) {
  switch (role) {
    case PlaceRole::kProcessor:
    case PlaceRole::kBus:
    case PlaceRole::kExclusionLock:
    case PlaceRole::kSyncPool:
      return "style=filled fillcolor=lightgoldenrod";
    case PlaceRole::kMissPending:
    case PlaceRole::kMissed:
      return "style=filled fillcolor=lightcoral";
    case PlaceRole::kStart:
    case PlaceRole::kEnd:
      return "style=filled fillcolor=lightsteelblue";
    default:
      return "";
  }
}

}  // namespace

std::string write_dot(const TimePetriNet& net, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph \"" << escape(net.name()) << "\" {\n";
  if (options.left_to_right) {
    os << "  rankdir=LR;\n";
  }
  os << "  node [fontsize=10];\n";

  for (PlaceId id : net.place_ids()) {
    const Place& place = net.place(id);
    const std::uint32_t tokens = options.marking.has_value()
                                     ? (*options.marking)[id]
                                     : place.initial_tokens;
    os << "  p" << id.value() << " [shape=circle label=\""
       << escape(place.name);
    if (tokens > 0) {
      os << "\\n" << tokens << (tokens == 1 ? " token" : " tokens");
    }
    os << "\"";
    const char* style = place_style(place.role);
    if (*style != '\0') {
      os << " " << style;
    }
    os << "];\n";
  }

  for (TransitionId id : net.transition_ids()) {
    const Transition& t = net.transition(id);
    os << "  t" << id.value() << " [shape=box style=filled "
       << "fillcolor=gray90 label=\"" << escape(t.name) << "\\n"
       << t.interval.to_string();
    if (options.show_priorities) {
      os << " pi=" << t.priority;
    }
    os << "\"];\n";
  }

  for (TransitionId id : net.transition_ids()) {
    for (const Arc& arc : net.inputs(id)) {
      os << "  p" << arc.place.value() << " -> t" << id.value();
      if (arc.weight != 1) {
        os << " [label=\"" << arc.weight << "\"]";
      }
      os << ";\n";
    }
    for (const Arc& arc : net.outputs(id)) {
      os << "  t" << id.value() << " -> p" << arc.place.value();
      if (arc.weight != 1) {
        os << " [label=\"" << arc.weight << "\"]";
      }
      os << ";\n";
    }
  }

  os << "}\n";
  return os.str();
}

}  // namespace ezrt::tpn
