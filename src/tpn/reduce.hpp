// Behavior-preserving net reductions.
//
// The paper keeps state-space growth under control with partial-order
// pruning during the search; a complementary *static* technique (used
// throughout the TPN literature, and in Barreto's methodology) is to
// shrink the net itself before searching. This module implements the
// series-fusion rule for punctual transitions:
//
//   A transition t with I(t) = [k, k] whose single output place p is
//   consumed only by a single transition u, where p has no other
//   producers and no initial tokens, can be fused into u: the pair
//   t -> p -> u becomes one transition t' with
//   I(t') = [EFT(t)+EFT(u)+k', ...] — restricted here to the simplest,
//   provably safe case k = 0 and unit arc weights, i.e. [0,0] glue
//   transitions introduced by block composition (grants, finishes,
//   acquires). Under strong semantics a conflict-free [0,0] transition
//   fires the instant it is enabled, so routing its inputs directly into
//   its successor preserves the timed language over the remaining
//   transitions.
//
// Reduction never touches transitions that carry semantic roles the
// schedule extractor needs (release/grant/compute/finish/deadline), so
// it is applied to *analysis* copies of the net (reachability bounds,
// search-cost ablations), not to the synthesis pipeline.
//
// Note that the glue transitions the builder emits are all guarded by a
// shared resource or conflict place (the processor, a lock, the deadline
// token), which makes them structurally conflicting and therefore not
// fusable — generated models pass through unchanged, by design; the
// compact BlockStyle performs the equivalent simplification safely at
// composition time. This rule earns its keep on hand-written and
// imported PNML nets.
#pragma once

#include <cstddef>

#include "base/result.hpp"
#include "tpn/net.hpp"

namespace ezrt::tpn {

struct ReductionOptions {
  /// Only transitions whose role is kGeneric are candidates unless this
  /// is set; schedule extraction relies on role-carrying transitions.
  bool fuse_role_transitions = false;
  /// Upper bound on fusion passes (the rule is confluent; this is a
  /// safety valve).
  std::size_t max_passes = 16;
};

struct ReductionReport {
  std::size_t fused_transitions = 0;
  std::size_t removed_places = 0;
  std::size_t passes = 0;
};

/// Returns a reduced structural copy of `net` plus a report of what was
/// fused. The input must be validated; the output is validated.
[[nodiscard]] Result<TimePetriNet> reduce_series(
    const TimePetriNet& net, ReductionReport* report = nullptr,
    const ReductionOptions& options = {});

}  // namespace ezrt::tpn
