// Timed semantics of an extended TPN (paper §3.1, Definitions 3.1/3.2).
//
// Implements, over State:
//   * ET(m)        — transitions enabled by the marking;
//   * DLB/DUB      — dynamic firing bounds max(0, EFT-c) and LFT-c;
//   * FT(s)        — fireable transitions: {t in ET(m) | DLB(t) <= min DUB},
//                    optionally restricted to minimal priority as in the
//                    paper's FT_P(s) definition;
//   * FD_s(t)      — the firing domain [DLB(t), min DUB];
//   * fire(s,t,q)  — Definition 3.1: token flow plus clock update (clock
//                    reset for the fired and the newly enabled transitions,
//                    advance by q for the persistently enabled rest).
//
// The semantics is *strong*: time may never advance beyond the smallest
// dynamic upper bound, which is why firing times are capped by min DUB.
#pragma once

#include <vector>

#include "base/result.hpp"
#include "base/time.hpp"
#include "tpn/net.hpp"
#include "tpn/state.hpp"

namespace ezrt::tpn {

/// A fireable transition together with its firing domain at some state.
struct FireableTransition {
  TransitionId transition;
  Time earliest;  ///< DLB(t), relative to the current state
  Time latest;    ///< min over ET(m) of DUB — the domain is [earliest,latest]
};

/// The labeled action (t, q) of the TLTS: transition t fired q time units
/// after the previous state.
struct FiringAction {
  TransitionId transition;
  Time delay = 0;
};

/// Stateless helper bound to one net. All methods are const and
/// thread-compatible.
class Semantics {
 public:
  explicit Semantics(const TimePetriNet& net);

  [[nodiscard]] const TimePetriNet& net() const { return *net_; }

  /// ET(m): every t whose preset is covered by the marking.
  [[nodiscard]] std::vector<TransitionId> enabled(const Marking& m) const;

  [[nodiscard]] bool is_enabled(const Marking& m, TransitionId t) const;

  /// Dynamic lower bound max(0, EFT(t) - c(t)).
  [[nodiscard]] Time dynamic_lower_bound(const State& s, TransitionId t) const;

  /// Dynamic upper bound LFT(t) - c(t); kTimeInfinity when unbounded.
  [[nodiscard]] Time dynamic_upper_bound(const State& s, TransitionId t) const;

  /// min over ET(m) of DUB — how far time may advance from s.
  /// kTimeInfinity when nothing is enabled or all LFTs are unbounded.
  [[nodiscard]] Time max_time_advance(const State& s,
                                      const std::vector<TransitionId>&
                                          enabled_set) const;

  /// FT(s) with firing domains. When `priority_filter` is set, restricts
  /// the result to transitions of minimal priority value, reproducing the
  /// paper's FT_P(s) pruning.
  [[nodiscard]] std::vector<FireableTransition> fireable(
      const State& s, bool priority_filter = false) const;

  /// Definition 3.1: fires t at relative time q. Precondition: t fireable
  /// at s and q inside its firing domain (checked).
  [[nodiscard]] State fire(const State& s, TransitionId t, Time q) const;

  /// Convenience: fire with domain checking reported as a Result instead of
  /// a contract violation (used by IO/replay paths on untrusted traces).
  [[nodiscard]] Result<State> try_fire(const State& s, TransitionId t,
                                       Time q) const;

 private:
  const TimePetriNet* net_;
};

}  // namespace ezrt::tpn
