// Timed semantics of an extended TPN (paper §3.1, Definitions 3.1/3.2).
//
// Implements, over State:
//   * ET(m)        — transitions enabled by the marking;
//   * DLB/DUB      — dynamic firing bounds max(0, EFT-c) and LFT-c;
//   * FT(s)        — fireable transitions: {t in ET(m) | DLB(t) <= min DUB},
//                    optionally restricted to minimal priority as in the
//                    paper's FT_P(s) definition;
//   * FD_s(t)      — the firing domain [DLB(t), min DUB];
//   * fire(s,t,q)  — Definition 3.1: token flow plus clock update (clock
//                    reset for the fired and the newly enabled transitions,
//                    advance by q for the persistently enabled rest).
//
// The semantics is *strong*: time may never advance beyond the smallest
// dynamic upper bound, which is why firing times are capped by min DUB.
#pragma once

#include <vector>

#include "base/result.hpp"
#include "base/time.hpp"
#include "tpn/net.hpp"
#include "tpn/state.hpp"

namespace ezrt::tpn {

/// A fireable transition together with its firing domain at some state.
struct FireableTransition {
  TransitionId transition;
  Time earliest;  ///< DLB(t), relative to the current state
  Time latest;    ///< min over ET(m) of DUB — the domain is [earliest,latest]
};

/// The labeled action (t, q) of the TLTS: transition t fired q time units
/// after the previous state.
struct FiringAction {
  TransitionId transition;
  Time delay = 0;
};

/// Stateless helper bound to one net. All methods are const and
/// thread-compatible.
class Semantics {
 public:
  explicit Semantics(const TimePetriNet& net);

  [[nodiscard]] const TimePetriNet& net() const { return *net_; }

  /// ET(m): every t whose preset is covered by the marking.
  [[nodiscard]] std::vector<TransitionId> enabled(const Marking& m) const;

  [[nodiscard]] bool is_enabled(const Marking& m, TransitionId t) const;

  /// Dynamic lower bound max(0, EFT(t) - c(t)).
  [[nodiscard]] Time dynamic_lower_bound(const State& s, TransitionId t) const;

  /// Dynamic upper bound LFT(t) - c(t); kTimeInfinity when unbounded.
  [[nodiscard]] Time dynamic_upper_bound(const State& s, TransitionId t) const;

  /// min over ET(m) of DUB — how far time may advance from s.
  /// kTimeInfinity when nothing is enabled or all LFTs are unbounded.
  [[nodiscard]] Time max_time_advance(const State& s,
                                      const std::vector<TransitionId>&
                                          enabled_set) const;

  /// FT(s) with firing domains. When `priority_filter` is set, restricts
  /// the result to transitions of minimal priority value, reproducing the
  /// paper's FT_P(s) pruning.
  [[nodiscard]] std::vector<FireableTransition> fireable(
      const State& s, bool priority_filter = false) const;

  /// As `fireable`, but appends into a caller-owned buffer (cleared first)
  /// so the search can reuse one allocation across millions of states.
  void fireable_into(const State& s, bool priority_filter,
                     std::vector<FireableTransition>& out) const;

  /// Definition 3.1: fires t at relative time q. Precondition: t fireable
  /// at s and q inside its firing domain (checked). Successors are
  /// computed incrementally over affected(t); see docs/semantics.md §5.
  [[nodiscard]] State fire(const State& s, TransitionId t, Time q) const;

  /// Hot-path firing for the scheduler: trusts that `f` came from
  /// `fireable(s)` and `q` lies in its domain (asserted in debug builds
  /// only), skipping the enabledness and domain re-checks `fire` pays.
  [[nodiscard]] State fire_fireable(const State& s,
                                    const FireableTransition& f,
                                    Time q) const;

  /// The literal dense Definition 3.1 (full |T| rescan, no cached enabled
  /// set): the reference implementation the incremental engine is checked
  /// against (tests/incremental_test.cpp). Results never carry an
  /// enabled-set cache, so a search over reference successors exercises
  /// the dense code paths throughout.
  [[nodiscard]] State fire_reference(const State& s, TransitionId t,
                                     Time q) const;

  /// Convenience: fire with domain checking reported as a Result instead of
  /// a contract violation (used by IO/replay paths on untrusted traces).
  [[nodiscard]] Result<State> try_fire(const State& s, TransitionId t,
                                       Time q) const;

 private:
  /// Rebuilds s's enabled bitset from its marking (dense scan).
  void refresh_enabled_cache(State& s) const;

  /// Shared core of fire/fire_fireable: incremental successor computation.
  [[nodiscard]] State fire_incremental(const State& s, TransitionId t,
                                       Time q) const;

  const TimePetriNet* net_;
};

/// The paper's FT_P(s) restriction: erases every candidate whose priority
/// is not minimal. Shared between Semantics::fireable and the scheduler's
/// expansion (which must filter *after* the partial-order reduction looked
/// at the unfiltered set).
void apply_priority_filter(const TimePetriNet& net,
                           std::vector<FireableTransition>& ft);

}  // namespace ezrt::tpn
