#include "tpn/net.hpp"

#include <algorithm>
#include <unordered_set>

#include "base/assert.hpp"

namespace ezrt::tpn {

const char* to_string(TransitionRole role) {
  switch (role) {
    case TransitionRole::kGeneric:
      return "generic";
    case TransitionRole::kFork:
      return "fork";
    case TransitionRole::kJoin:
      return "join";
    case TransitionRole::kPhase:
      return "phase";
    case TransitionRole::kPeriod:
      return "period";
    case TransitionRole::kRelease:
      return "release";
    case TransitionRole::kGrant:
      return "grant";
    case TransitionRole::kCompute:
      return "compute";
    case TransitionRole::kFinish:
      return "finish";
    case TransitionRole::kDeadlineHit:
      return "deadline-hit";
    case TransitionRole::kDeadlineMiss:
      return "deadline-miss";
    case TransitionRole::kExclusionAcquire:
      return "exclusion-acquire";
    case TransitionRole::kCommunication:
      return "communication";
  }
  return "unknown";
}

const char* to_string(PlaceRole role) {
  switch (role) {
    case PlaceRole::kGeneric:
      return "generic";
    case PlaceRole::kStart:
      return "start";
    case PlaceRole::kEnd:
      return "end";
    case PlaceRole::kWaitArrival:
      return "wait-arrival";
    case PlaceRole::kWaitRelease:
      return "wait-release";
    case PlaceRole::kWaitGrant:
      return "wait-grant";
    case PlaceRole::kWaitCompute:
      return "wait-compute";
    case PlaceRole::kWaitFinish:
      return "wait-finish";
    case PlaceRole::kFinished:
      return "finished";
    case PlaceRole::kWaitDeadline:
      return "wait-deadline";
    case PlaceRole::kMissPending:
      return "miss-pending";
    case PlaceRole::kMissed:
      return "missed";
    case PlaceRole::kProcessor:
      return "processor";
    case PlaceRole::kBus:
      return "bus";
    case PlaceRole::kExclusionLock:
      return "exclusion-lock";
    case PlaceRole::kLocked:
      return "locked";
    case PlaceRole::kPrecedence:
      return "precedence";
    case PlaceRole::kSyncPool:
      return "sync-pool";
  }
  return "unknown";
}

PlaceId TimePetriNet::add_place(Place place) {
  EZRT_CHECK(!validated_, "cannot mutate a validated net");
  return places_.push_back(std::move(place));
}

PlaceId TimePetriNet::add_place(std::string name,
                                std::uint32_t initial_tokens, PlaceRole role,
                                TaskId task) {
  return add_place(Place{std::move(name), initial_tokens, role, task});
}

TransitionId TimePetriNet::add_transition(Transition transition) {
  EZRT_CHECK(!validated_, "cannot mutate a validated net");
  const TransitionId id = transitions_.push_back(std::move(transition));
  inputs_.push_back({});
  outputs_.push_back({});
  return id;
}

TransitionId TimePetriNet::add_transition(std::string name,
                                          TimeInterval interval,
                                          Priority priority,
                                          TransitionRole role, TaskId task) {
  return add_transition(Transition{std::move(name), interval, priority, role,
                                   task, std::nullopt});
}

void TimePetriNet::add_input(TransitionId t, PlaceId p, std::uint32_t weight) {
  EZRT_CHECK(!validated_, "cannot mutate a validated net");
  EZRT_CHECK(weight > 0, "arc weight must be positive");
  EZRT_CHECK(t.value() < transitions_.size(), "unknown transition");
  EZRT_CHECK(p.value() < places_.size(), "unknown place");
  inputs_[t].push_back(Arc{p, weight});
}

void TimePetriNet::add_output(TransitionId t, PlaceId p,
                              std::uint32_t weight) {
  EZRT_CHECK(!validated_, "cannot mutate a validated net");
  EZRT_CHECK(weight > 0, "arc weight must be positive");
  EZRT_CHECK(t.value() < transitions_.size(), "unknown transition");
  EZRT_CHECK(p.value() < places_.size(), "unknown place");
  outputs_[t].push_back(Arc{p, weight});
}

std::vector<std::uint32_t> TimePetriNet::initial_marking() const {
  std::vector<std::uint32_t> m;
  m.reserve(places_.size());
  for (const Place& p : places_) {
    m.push_back(p.initial_tokens);
  }
  return m;
}

std::optional<PlaceId> TimePetriNet::find_place(std::string_view name) const {
  for (PlaceId id : places_.ids()) {
    if (places_[id].name == name) {
      return id;
    }
  }
  return std::nullopt;
}

std::optional<TransitionId> TimePetriNet::find_transition(
    std::string_view name) const {
  for (TransitionId id : transitions_.ids()) {
    if (transitions_[id].name == name) {
      return id;
    }
  }
  return std::nullopt;
}

Status TimePetriNet::validate() {
  std::unordered_set<std::string> names;
  for (const Place& p : places_) {
    if (p.name.empty()) {
      return make_error(ErrorCode::kValidationError, "place with empty name");
    }
    if (!names.insert("p:" + p.name).second) {
      return make_error(ErrorCode::kValidationError,
                        "duplicate place name '" + p.name + "'");
    }
  }
  for (const Transition& t : transitions_) {
    if (t.name.empty()) {
      return make_error(ErrorCode::kValidationError,
                        "transition with empty name");
    }
    if (!names.insert("t:" + t.name).second) {
      return make_error(ErrorCode::kValidationError,
                        "duplicate transition name '" + t.name + "'");
    }
  }
  for (TransitionId t : transitions_.ids()) {
    if (inputs_[t].empty()) {
      return make_error(ErrorCode::kValidationError,
                        "transition '" + transitions_[t].name +
                            "' has no input place (source transitions are "
                            "not supported)");
    }
  }

  consumers_.clear();
  consumers_.resize(places_.size());
  for (TransitionId t : transitions_.ids()) {
    for (const Arc& arc : inputs_[t]) {
      consumers_[arc.place].push_back(t);
    }
  }

  // Affected-set index (CSR): the transitions whose enabledness a firing
  // of t can change are exactly the consumers of •t ∪ t•. Dedup'd via a
  // scratch membership vector, sorted so iteration order is the id order
  // the dense reference scan uses.
  affected_offsets_.assign(transitions_.size() + 1, 0);
  affected_flat_.clear();
  std::vector<std::uint8_t> member(transitions_.size(), 0);
  std::vector<TransitionId> scratch;
  for (TransitionId t : transitions_.ids()) {
    scratch.clear();
    const auto collect = [&](const std::vector<Arc>& arcs) {
      for (const Arc& arc : arcs) {
        for (TransitionId u : consumers_[arc.place]) {
          if (!member[u.value()]) {
            member[u.value()] = 1;
            scratch.push_back(u);
          }
        }
      }
    };
    collect(inputs_[t]);
    collect(outputs_[t]);
    for (TransitionId u : scratch) {
      member[u.value()] = 0;
    }
    std::sort(scratch.begin(), scratch.end(),
              [](TransitionId a, TransitionId b) {
                return a.value() < b.value();
              });
    affected_flat_.insert(affected_flat_.end(), scratch.begin(),
                          scratch.end());
    affected_offsets_[t.value() + 1] =
        static_cast<std::uint32_t>(affected_flat_.size());
  }

  conflict_free_.assign(transitions_.size(), 1);
  for (TransitionId t : transitions_.ids()) {
    for (const Arc& arc : inputs_[t]) {
      if (consumers_[arc.place].size() > 1) {
        conflict_free_[t.value()] = 0;
        break;
      }
    }
  }

  validated_ = true;
  return Status();
}

}  // namespace ezrt::tpn
