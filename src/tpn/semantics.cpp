#include "tpn/semantics.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "base/assert.hpp"

namespace ezrt::tpn {

Semantics::Semantics(const TimePetriNet& net) : net_(&net) {
  EZRT_CHECK(net.validated(), "Semantics requires a validated net");
}

std::vector<TransitionId> Semantics::enabled(const Marking& m) const {
  std::vector<TransitionId> out;
  for (TransitionId t : net_->transition_ids()) {
    if (is_enabled(m, t)) {
      out.push_back(t);
    }
  }
  return out;
}

bool Semantics::is_enabled(const Marking& m, TransitionId t) const {
  for (const Arc& arc : net_->inputs(t)) {
    if (!m.covers(arc.place, arc.weight)) {
      return false;
    }
  }
  return true;
}

Time Semantics::dynamic_lower_bound(const State& s, TransitionId t) const {
  const Time eft = net_->transition(t).interval.eft();
  const Time c = s.clock(t);
  return eft > c ? eft - c : 0;
}

Time Semantics::dynamic_upper_bound(const State& s, TransitionId t) const {
  const TimeInterval& interval = net_->transition(t).interval;
  if (!interval.bounded()) {
    return kTimeInfinity;
  }
  const Time c = s.clock(t);
  // Strong semantics guarantee c never exceeds LFT for enabled transitions.
  EZRT_ASSERT(c <= interval.lft(),
              "clock of '" + net_->transition(t).name + "' passed its LFT");
  return interval.lft() - c;
}

Time Semantics::max_time_advance(
    const State& s, const std::vector<TransitionId>& enabled_set) const {
  Time bound = kTimeInfinity;
  for (TransitionId t : enabled_set) {
    bound = std::min(bound, dynamic_upper_bound(s, t));
  }
  return bound;
}

void Semantics::refresh_enabled_cache(State& s) const {
  s.reset_enabled_cache(net_->transition_count());
  for (TransitionId t : net_->transition_ids()) {
    if (is_enabled(s.marking_, t)) {
      s.set_enabled_bit(t);
    }
  }
}

std::vector<FireableTransition> Semantics::fireable(
    const State& s, bool priority_filter) const {
  std::vector<FireableTransition> out;
  fireable_into(s, priority_filter, out);
  return out;
}

void Semantics::fireable_into(const State& s, bool priority_filter,
                              std::vector<FireableTransition>& out) const {
  out.clear();
  if (s.enabled_cache_valid()) {
    // Iterate the maintained enabled set (in transition-id order, exactly
    // as the dense scan would): one pass for the time bound, one for the
    // surviving candidates.
    const auto words = s.enabled_words();
    const auto for_each_enabled = [&](auto&& body) {
      for (std::size_t wi = 0; wi < words.size(); ++wi) {
        std::uint64_t w = words[wi];
        while (w != 0) {
          const auto bit = static_cast<std::uint32_t>(std::countr_zero(w));
          w &= w - 1;
          body(TransitionId(static_cast<std::uint32_t>(wi * 64) + bit));
        }
      }
    };
    Time bound = kTimeInfinity;
    for_each_enabled([&](TransitionId t) {
      bound = std::min(bound, dynamic_upper_bound(s, t));
    });
    out.reserve(s.enabled_count());
    for_each_enabled([&](TransitionId t) {
      const Time dlb = dynamic_lower_bound(s, t);
      if (dlb <= bound) {
        out.push_back(FireableTransition{t, dlb, bound});
      }
    });
  } else {
    // No cache (hand-built or externally mutated state): dense reference
    // enumeration.
    const std::vector<TransitionId> enabled_set = enabled(s.marking());
    const Time bound = max_time_advance(s, enabled_set);
    out.reserve(enabled_set.size());
    for (TransitionId t : enabled_set) {
      const Time dlb = dynamic_lower_bound(s, t);
      if (dlb <= bound) {
        out.push_back(FireableTransition{t, dlb, bound});
      }
    }
  }

  if (priority_filter) {
    apply_priority_filter(*net_, out);
  }
}

State Semantics::fire_incremental(const State& s, TransitionId t,
                                  Time q) const {
  State next = s;
  if (!next.enabled_cache_valid()) {
    refresh_enabled_cache(next);  // reflects the pre-firing marking m
  }
  if (!next.digest_valid()) {
    next.refresh_digest();
  }

  // (1) Token flow: m' = m - W(p,t) + W(t,p) — touches only •t ∪ t•, and
  // the identity digest is patched cell-by-cell alongside.
  for (const Arc& arc : net_->inputs(t)) {
    const std::uint32_t before = next.marking_[arc.place];
    next.marking_.remove(arc.place, arc.weight);
    next.digest_token_update(arc.place.value(), before, before - arc.weight);
  }
  for (const Arc& arc : net_->outputs(t)) {
    const std::uint32_t before = next.marking_[arc.place];
    next.marking_.add(arc.place, arc.weight);
    next.digest_token_update(arc.place.value(), before, before + arc.weight);
  }

  // (2) Advance the clock of every transition enabled in m by q. For
  // transitions outside affected(t) whose enabledness cannot change, this
  // IS the Definition 3.1 update; for the rest, step (3) overrides.
  if (q > 0) {
    const auto& words = next.enabled_words_;
    for (std::size_t wi = 0; wi < words.size(); ++wi) {
      std::uint64_t w = words[wi];
      while (w != 0) {
        const auto bit = static_cast<std::uint32_t>(std::countr_zero(w));
        w &= w - 1;
        const std::size_t i = wi * 64 + bit;
        const Time c = next.clocks_[i];
        next.clocks_[i] = c + q;
        next.digest_clock_update(i, c, c + q);
      }
    }
  }

  // (3) Re-evaluate the affected neighborhood against m' (Definition 3.1
  // compares enabledness in m and m' only — never any intermediate
  // marking, so disabled-then-re-enabled within this one firing lands in
  // the "newly enabled" case by comparing against the cached m bits).
  for (TransitionId u : net_->affected(t)) {
    const bool enabled_before = next.cached_enabled(u);
    bool reset = false;
    if (!is_enabled(next.marking_, u)) {
      if (enabled_before) {
        next.clear_enabled_bit(u);
      }
      reset = true;  // canonical form for disabled
    } else if (!enabled_before || u == t) {
      if (!enabled_before) {
        next.set_enabled_bit(u);
      }
      reset = true;  // newly enabled, or the fired one
    }
    // else: persistently enabled and not fired — step (2) advanced it.
    if (reset) {
      const Time c = next.clocks_[u.value()];
      if (c != 0) {
        next.clocks_[u.value()] = 0;
        next.digest_clock_update(u.value(), c, 0);
      }
    }
  }

  next.elapsed_ = s.elapsed_ + q;
  return next;
}

State Semantics::fire(const State& s, TransitionId t, Time q) const {
  EZRT_CHECK(is_enabled(s.marking(), t),
             "fire: transition '" + net_->transition(t).name +
                 "' is not enabled");
  const Time dlb = dynamic_lower_bound(s, t);
  const std::vector<TransitionId> old_enabled = enabled(s.marking());
  const Time bound = max_time_advance(s, old_enabled);
  EZRT_CHECK(q >= dlb && q <= bound,
             "fire: delay outside the firing domain of '" +
                 net_->transition(t).name + "'");
  return fire_incremental(s, t, q);
}

State Semantics::fire_fireable(const State& s, const FireableTransition& f,
                               Time q) const {
  EZRT_ASSERT(q >= f.earliest && q <= f.latest,
              "fire_fireable: delay outside the precomputed domain of '" +
                  net_->transition(f.transition).name + "'");
  return fire_incremental(s, f.transition, q);
}

State Semantics::fire_reference(const State& s, TransitionId t,
                                Time q) const {
  EZRT_CHECK(is_enabled(s.marking(), t),
             "fire: transition '" + net_->transition(t).name +
                 "' is not enabled");
  const Time dlb = dynamic_lower_bound(s, t);
  const std::vector<TransitionId> old_enabled = enabled(s.marking());
  const Time bound = max_time_advance(s, old_enabled);
  EZRT_CHECK(q >= dlb && q <= bound,
             "fire: delay outside the firing domain of '" +
                 net_->transition(t).name + "'");

  State next = s;
  next.drop_enabled_cache();
  next.drop_digest();
  // (1) Token flow: m' = m - W(p,t) + W(t,p).
  for (const Arc& arc : net_->inputs(t)) {
    next.marking_.remove(arc.place, arc.weight);
  }
  for (const Arc& arc : net_->outputs(t)) {
    next.marking_.add(arc.place, arc.weight);
  }

  // (2) Clock update (Definition 3.1). A transition enabled in the new
  // marking gets clock 0 if it is the fired one or was disabled before,
  // and advances by q otherwise. Disabled transitions are normalized to 0.
  for (TransitionId tk : net_->transition_ids()) {
    if (!is_enabled(next.marking_, tk)) {
      next.set_clock(tk, 0);
      continue;
    }
    if (tk == t || !is_enabled(s.marking(), tk)) {
      next.set_clock(tk, 0);
    } else {
      next.set_clock(tk, s.clock(tk) + q);
    }
  }
  next.set_elapsed(s.elapsed() + q);
  return next;
}

Result<State> Semantics::try_fire(const State& s, TransitionId t, Time q)
    const {
  if (t.value() >= net_->transition_count()) {
    return make_error(ErrorCode::kInvalidArgument, "unknown transition id");
  }
  if (!is_enabled(s.marking(), t)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "transition '" + net_->transition(t).name +
                          "' is not enabled at this state");
  }
  const Time dlb = dynamic_lower_bound(s, t);
  const Time bound = max_time_advance(s, enabled(s.marking()));
  if (q < dlb || q > bound) {
    return make_error(ErrorCode::kInvalidArgument,
                      "delay " + std::to_string(q) +
                          " outside the firing domain of '" +
                          net_->transition(t).name + "'");
  }
  return fire(s, t, q);
}

void apply_priority_filter(const TimePetriNet& net,
                           std::vector<FireableTransition>& ft) {
  if (ft.empty()) {
    return;
  }
  // FT_P(s): only transitions of minimal priority value survive.
  Priority best = std::numeric_limits<Priority>::max();
  for (const FireableTransition& f : ft) {
    best = std::min(best, net.transition(f.transition).priority);
  }
  std::erase_if(ft, [&](const FireableTransition& f) {
    return net.transition(f.transition).priority != best;
  });
}

State State::initial(const TimePetriNet& net) {
  State s;
  s.marking_ = Marking(net.initial_marking());
  s.clocks_.assign(net.transition_count(), 0);
  s.elapsed_ = 0;
  s.refresh_digest();
  return s;
}

}  // namespace ezrt::tpn
