#include "tpn/semantics.hpp"

#include <algorithm>
#include <limits>

#include "base/assert.hpp"

namespace ezrt::tpn {

Semantics::Semantics(const TimePetriNet& net) : net_(&net) {
  EZRT_CHECK(net.validated(), "Semantics requires a validated net");
}

std::vector<TransitionId> Semantics::enabled(const Marking& m) const {
  std::vector<TransitionId> out;
  for (TransitionId t : net_->transition_ids()) {
    if (is_enabled(m, t)) {
      out.push_back(t);
    }
  }
  return out;
}

bool Semantics::is_enabled(const Marking& m, TransitionId t) const {
  for (const Arc& arc : net_->inputs(t)) {
    if (!m.covers(arc.place, arc.weight)) {
      return false;
    }
  }
  return true;
}

Time Semantics::dynamic_lower_bound(const State& s, TransitionId t) const {
  const Time eft = net_->transition(t).interval.eft();
  const Time c = s.clock(t);
  return eft > c ? eft - c : 0;
}

Time Semantics::dynamic_upper_bound(const State& s, TransitionId t) const {
  const TimeInterval& interval = net_->transition(t).interval;
  if (!interval.bounded()) {
    return kTimeInfinity;
  }
  const Time c = s.clock(t);
  // Strong semantics guarantee c never exceeds LFT for enabled transitions.
  EZRT_ASSERT(c <= interval.lft(),
              "clock of '" + net_->transition(t).name + "' passed its LFT");
  return interval.lft() - c;
}

Time Semantics::max_time_advance(
    const State& s, const std::vector<TransitionId>& enabled_set) const {
  Time bound = kTimeInfinity;
  for (TransitionId t : enabled_set) {
    bound = std::min(bound, dynamic_upper_bound(s, t));
  }
  return bound;
}

std::vector<FireableTransition> Semantics::fireable(
    const State& s, bool priority_filter) const {
  const std::vector<TransitionId> enabled_set = enabled(s.marking());
  const Time bound = max_time_advance(s, enabled_set);

  std::vector<FireableTransition> out;
  out.reserve(enabled_set.size());
  for (TransitionId t : enabled_set) {
    const Time dlb = dynamic_lower_bound(s, t);
    if (dlb <= bound) {
      out.push_back(FireableTransition{t, dlb, bound});
    }
  }

  if (priority_filter && !out.empty()) {
    // FT_P(s): only transitions of minimal priority value survive.
    Priority best = std::numeric_limits<Priority>::max();
    for (const FireableTransition& f : out) {
      best = std::min(best, net_->transition(f.transition).priority);
    }
    std::erase_if(out, [&](const FireableTransition& f) {
      return net_->transition(f.transition).priority != best;
    });
  }
  return out;
}

State Semantics::fire(const State& s, TransitionId t, Time q) const {
  EZRT_CHECK(is_enabled(s.marking(), t),
             "fire: transition '" + net_->transition(t).name +
                 "' is not enabled");
  const Time dlb = dynamic_lower_bound(s, t);
  const std::vector<TransitionId> old_enabled = enabled(s.marking());
  const Time bound = max_time_advance(s, old_enabled);
  EZRT_CHECK(q >= dlb && q <= bound,
             "fire: delay outside the firing domain of '" +
                 net_->transition(t).name + "'");

  State next = s;
  // (1) Token flow: m' = m - W(p,t) + W(t,p).
  for (const Arc& arc : net_->inputs(t)) {
    next.marking().remove(arc.place, arc.weight);
  }
  for (const Arc& arc : net_->outputs(t)) {
    next.marking().add(arc.place, arc.weight);
  }

  // (2) Clock update (Definition 3.1). A transition enabled in the new
  // marking gets clock 0 if it is the fired one or was disabled before,
  // and advances by q otherwise. Disabled transitions are normalized to 0.
  for (TransitionId tk : net_->transition_ids()) {
    if (!is_enabled(next.marking(), tk)) {
      next.set_clock(tk, 0);
      continue;
    }
    if (tk == t || !is_enabled(s.marking(), tk)) {
      next.set_clock(tk, 0);
    } else {
      next.set_clock(tk, s.clock(tk) + q);
    }
  }
  next.set_elapsed(s.elapsed() + q);
  return next;
}

Result<State> Semantics::try_fire(const State& s, TransitionId t, Time q)
    const {
  if (t.value() >= net_->transition_count()) {
    return make_error(ErrorCode::kInvalidArgument, "unknown transition id");
  }
  if (!is_enabled(s.marking(), t)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "transition '" + net_->transition(t).name +
                          "' is not enabled at this state");
  }
  const Time dlb = dynamic_lower_bound(s, t);
  const Time bound = max_time_advance(s, enabled(s.marking()));
  if (q < dlb || q > bound) {
    return make_error(ErrorCode::kInvalidArgument,
                      "delay " + std::to_string(q) +
                          " outside the firing domain of '" +
                          net_->transition(t).name + "'");
  }
  return fire(s, t, q);
}

State State::initial(const TimePetriNet& net) {
  State s;
  s.marking_ = Marking(net.initial_marking());
  s.clocks_.assign(net.transition_count(), 0);
  s.elapsed_ = 0;
  return s;
}

}  // namespace ezrt::tpn
