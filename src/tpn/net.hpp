// Extended time Petri net structure (paper §3.1).
//
// A TPN is the tuple P = (P, T, F, W, m0, I); the extension adds a priority
// function pi : T -> N and a partial code-binding CS : T -/-> ST. This
// module stores the *structure* only; the timed semantics (states, firing
// rule) live in state.hpp / semantics.hpp.
//
// Beyond the paper's tuple, each node carries role metadata (which building
// block produced it, and for which task). Roles never influence the firing
// semantics — they exist so the scheduler can translate a feasible firing
// schedule back into task-level events (schedule-table extraction, §4.4.2)
// and so exporters can annotate PNML.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/ids.hpp"
#include "base/result.hpp"
#include "base/time.hpp"

namespace ezrt::tpn {

/// Which building block (§3.3) a node belongs to. kGeneric marks nodes of
/// hand-built nets that did not come from the specification builder.
enum class TransitionRole : std::uint8_t {
  kGeneric,
  kFork,          ///< tstart of the fork block
  kJoin,          ///< tend of the join block
  kPhase,         ///< tph_i — first arrival after the phase offset
  kPeriod,        ///< ta_i — subsequent periodic arrivals
  kRelease,       ///< tr_i — release window [r, d-c]
  kGrant,         ///< tg_i — processor grant
  kCompute,       ///< tc_i — computation ([c,c] or unit chunk)
  kFinish,        ///< tf_i — instance completion
  kDeadlineHit,   ///< td_i — fires exactly at the deadline
  kDeadlineMiss,  ///< tpc_i — moves the token into the miss place
  kExclusionAcquire,  ///< texcl_i — atomic lock acquisition
  kCommunication,     ///< tm_ij — message transfer on a bus
};

enum class PlaceRole : std::uint8_t {
  kGeneric,
  kStart,         ///< pstart / pst_i
  kEnd,           ///< pend — marked iff a feasible schedule completed
  kWaitArrival,   ///< pwa_i — remaining instance budget
  kWaitRelease,   ///< pwr_i
  kWaitGrant,     ///< pwg_i
  kWaitCompute,   ///< pwc_i
  kWaitFinish,    ///< pwf_i
  kFinished,      ///< pf_i
  kWaitDeadline,  ///< pwd_i
  kMissPending,   ///< pwpc_i — deadline hit, miss imminent (undesirable)
  kMissed,        ///< pdm_i — deadline missed (undesirable)
  kProcessor,     ///< pproc — processor resource
  kBus,           ///< bus resource for messages
  kExclusionLock, ///< pexcl_ij
  kLocked,        ///< pwexcl_i — chunks allowed to run under the lock
  kPrecedence,    ///< pprec_ij
  kSyncPool,      ///< psync_pool — bounded budget of K shared sync resources
};

[[nodiscard]] const char* to_string(TransitionRole role);
[[nodiscard]] const char* to_string(PlaceRole role);

/// Priority value; smaller means higher priority (paper: min is preferred).
using Priority = std::uint32_t;
inline constexpr Priority kDefaultPriority = 1'000;

/// One endpoint of F with its weight W.
struct Arc {
  PlaceId place;
  std::uint32_t weight = 1;
};

struct Place {
  std::string name;
  std::uint32_t initial_tokens = 0;
  PlaceRole role = PlaceRole::kGeneric;
  TaskId task;  ///< owning task, when the role is task-specific
};

struct Transition {
  std::string name;
  TimeInterval interval;  ///< static firing interval I(t) = [EFT, LFT]
  Priority priority = kDefaultPriority;
  TransitionRole role = TransitionRole::kGeneric;
  TaskId task;  ///< owning task, when the role is task-specific
  /// CS(t): index into the specification's source-task codes, when this
  /// transition carries behavioural code (compute transitions do).
  std::optional<std::uint32_t> code;
};

/// The net structure. Build with add_place / add_transition / add_arc*,
/// then call `validate()` once; the net is immutable-by-convention after
/// that (the scheduler only reads it).
class TimePetriNet {
 public:
  TimePetriNet() = default;
  explicit TimePetriNet(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // -- Construction -------------------------------------------------------

  PlaceId add_place(Place place);
  PlaceId add_place(std::string name, std::uint32_t initial_tokens = 0,
                    PlaceRole role = PlaceRole::kGeneric,
                    TaskId task = TaskId());

  TransitionId add_transition(Transition transition);
  TransitionId add_transition(std::string name, TimeInterval interval,
                              Priority priority = kDefaultPriority,
                              TransitionRole role = TransitionRole::kGeneric,
                              TaskId task = TaskId());

  /// Adds an arc place -> transition with the given weight (input arc).
  void add_input(TransitionId t, PlaceId p, std::uint32_t weight = 1);
  /// Adds an arc transition -> place with the given weight (output arc).
  void add_output(TransitionId t, PlaceId p, std::uint32_t weight = 1);

  // -- Access -------------------------------------------------------------

  [[nodiscard]] std::size_t place_count() const { return places_.size(); }
  [[nodiscard]] std::size_t transition_count() const {
    return transitions_.size();
  }

  [[nodiscard]] const Place& place(PlaceId id) const { return places_[id]; }
  [[nodiscard]] const Transition& transition(TransitionId id) const {
    return transitions_[id];
  }
  [[nodiscard]] Place& place(PlaceId id) { return places_[id]; }
  [[nodiscard]] Transition& transition(TransitionId id) {
    return transitions_[id];
  }

  [[nodiscard]] auto place_ids() const { return places_.ids(); }
  [[nodiscard]] auto transition_ids() const { return transitions_.ids(); }

  /// Preset of t as arcs (place, weight).
  [[nodiscard]] const std::vector<Arc>& inputs(TransitionId t) const {
    return inputs_[t];
  }
  /// Postset of t as arcs (place, weight).
  [[nodiscard]] const std::vector<Arc>& outputs(TransitionId t) const {
    return outputs_[t];
  }

  /// Transitions that consume from p (computed by validate()).
  [[nodiscard]] const std::vector<TransitionId>& consumers(PlaceId p) const {
    return consumers_[p];
  }

  /// Transitions whose enabledness can change when t fires: the consumers
  /// of t's input and output places, dedup'd and sorted by id (computed by
  /// validate(); CSR layout). Always contains t itself, since t consumes
  /// its own preset. This is the static dependency index the incremental
  /// firing engine rechecks instead of all of T (docs/semantics.md §5).
  [[nodiscard]] std::span<const TransitionId> affected(TransitionId t) const {
    return {affected_flat_.data() + affected_offsets_[t.value()],
            affected_offsets_[t.value() + 1] - affected_offsets_[t.value()]};
  }

  /// Cached structural conflict-freedom: no input place of t feeds any
  /// other transition (computed by validate(); used by the partial-order
  /// reduction on every expansion).
  [[nodiscard]] bool conflict_free(TransitionId t) const {
    return conflict_free_[t.value()] != 0;
  }

  /// Initial marking m0 as a dense token vector.
  [[nodiscard]] std::vector<std::uint32_t> initial_marking() const;

  /// Looks up nodes by name (linear scan; intended for tests/IO, not the
  /// scheduler hot path).
  [[nodiscard]] std::optional<PlaceId> find_place(std::string_view name) const;
  [[nodiscard]] std::optional<TransitionId> find_transition(
      std::string_view name) const;

  /// Structural checks: unique non-empty node names, positive arc weights,
  /// every transition has at least one input (the building blocks never
  /// produce source transitions, and a source transition with a bounded
  /// interval would make every marking diverge). Also populates the
  /// consumer index, the affected-set index and the conflict-free bits.
  /// Must be called once after construction.
  [[nodiscard]] Status validate();

  [[nodiscard]] bool validated() const { return validated_; }

 private:
  std::string name_;
  IdVector<PlaceId, Place> places_;
  IdVector<TransitionId, Transition> transitions_;
  IdVector<TransitionId, std::vector<Arc>> inputs_;
  IdVector<TransitionId, std::vector<Arc>> outputs_;
  IdVector<PlaceId, std::vector<TransitionId>> consumers_;
  // CSR storage for affected(): transition t's neighborhood occupies
  // affected_flat_[affected_offsets_[t] .. affected_offsets_[t+1]).
  std::vector<std::uint32_t> affected_offsets_;
  std::vector<TransitionId> affected_flat_;
  std::vector<std::uint8_t> conflict_free_;
  bool validated_ = false;
};

}  // namespace ezrt::tpn
