// Net composition operators (paper §3.3).
//
// "The proposed modeling method is conducted by building block
// compositions. This work adopts several operators for building block
// compositions" — the paper defers their definition to Barreto's thesis.
// This module provides the standard operator set those methodologies use,
// as reusable net algebra (the specification builder inlines equivalent
// constructions for speed; these operators serve hand-built models, tests
// and imported PNML):
//
//   * rename(net, prefix)      — uniquely prefix every node name;
//   * disjoint_union(a, b)     — place nets side by side;
//   * merge_places(net, names) — fuse equally-named listed places (the
//     fused place keeps the *maximum* of the initial markings, which is
//     idempotent for shared resource places both blocks model with one
//     token): the "place merging" operator that glues blocks via shared
//     interface places (pproc, pexcl, pprec...);
//   * serial(a, b, via)        — connect a's end place to b's start place
//     through a [0,0] glue transition.
//
// All operators are value-oriented: they take validated nets and return
// fresh validated nets.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "base/result.hpp"
#include "tpn/net.hpp"

namespace ezrt::tpn {

/// Copy of `net` with every node name prefixed ("T1." + name).
[[nodiscard]] Result<TimePetriNet> rename_prefixed(const TimePetriNet& net,
                                                   std::string_view prefix);

/// Disjoint union: requires all node names to be distinct across inputs.
[[nodiscard]] Result<TimePetriNet> disjoint_union(const TimePetriNet& a,
                                                  const TimePetriNet& b,
                                                  std::string name);

/// Fuses every group of places sharing a name in `place_names` into one
/// place (initial tokens summed, arcs redirected). Place names listed but
/// absent from the net are ignored. The first occurrence's role/task are
/// kept.
[[nodiscard]] Result<TimePetriNet> merge_places(
    const TimePetriNet& net, const std::vector<std::string>& place_names);

/// Union of a and b followed by fusing all places that carry the *same
/// name* in both nets — the block-gluing operator: shared interface
/// places (a processor, a lock, a precedence place) connect the blocks.
[[nodiscard]] Result<TimePetriNet> glue(const TimePetriNet& a,
                                        const TimePetriNet& b,
                                        std::string name);

/// Serial composition: adds a [0,0] transition consuming `from_place` of
/// `a` and producing `to_place` of `b`, over their disjoint union.
[[nodiscard]] Result<TimePetriNet> serial(const TimePetriNet& a,
                                          const TimePetriNet& b,
                                          std::string_view from_place,
                                          std::string_view to_place,
                                          std::string name);

}  // namespace ezrt::tpn
