#include "tpn/compose.hpp"

#include <algorithm>
#include <map>

#include "base/assert.hpp"

namespace ezrt::tpn {

namespace {

/// Copies `source` into `target`, returning the place-id mapping; names
/// may be transformed by `rename`.
template <typename Rename>
std::vector<PlaceId> copy_into(const TimePetriNet& source,
                               TimePetriNet& target, Rename&& rename) {
  std::vector<PlaceId> place_map(source.place_count());
  for (PlaceId p : source.place_ids()) {
    Place place = source.place(p);
    place.name = rename(place.name);
    place_map[p.value()] = target.add_place(std::move(place));
  }
  for (TransitionId t : source.transition_ids()) {
    Transition transition = source.transition(t);
    transition.name = rename(transition.name);
    const TransitionId id = target.add_transition(std::move(transition));
    for (const Arc& arc : source.inputs(t)) {
      target.add_input(id, place_map[arc.place.value()], arc.weight);
    }
    for (const Arc& arc : source.outputs(t)) {
      target.add_output(id, place_map[arc.place.value()], arc.weight);
    }
  }
  return place_map;
}

}  // namespace

Result<TimePetriNet> rename_prefixed(const TimePetriNet& net,
                                     std::string_view prefix) {
  EZRT_CHECK(net.validated(), "rename requires a validated net");
  TimePetriNet out(std::string(prefix) + net.name());
  copy_into(net, out, [&](const std::string& name) {
    return std::string(prefix) + name;
  });
  if (auto status = out.validate(); !status.ok()) {
    return status.error();
  }
  return out;
}

Result<TimePetriNet> disjoint_union(const TimePetriNet& a,
                                    const TimePetriNet& b,
                                    std::string name) {
  EZRT_CHECK(a.validated() && b.validated(),
             "union requires validated nets");
  TimePetriNet out(std::move(name));
  const auto identity = [](const std::string& n) { return n; };
  copy_into(a, out, identity);
  copy_into(b, out, identity);
  // validate() rejects duplicate names, enforcing disjointness.
  if (auto status = out.validate(); !status.ok()) {
    return status.error();
  }
  return out;
}

Result<TimePetriNet> merge_places(const TimePetriNet& net,
                                  const std::vector<std::string>&
                                      place_names) {
  EZRT_CHECK(net.validated(), "merge requires a validated net");

  // Representative (first occurrence) per fused name.
  std::map<std::string, PlaceId> representative;
  std::vector<PlaceId> place_map(net.place_count());
  TimePetriNet out(net.name());

  auto should_merge = [&](const std::string& name) {
    for (const std::string& candidate : place_names) {
      if (candidate == name) {
        return true;
      }
    }
    return false;
  };

  // First pass: create surviving places; accumulate tokens on the
  // representative.
  std::map<std::string, std::uint32_t> fused_tokens;
  for (PlaceId p : net.place_ids()) {
    const Place& place = net.place(p);
    if (should_merge(place.name)) {
      auto it = representative.find(place.name);
      if (it != representative.end()) {
        place_map[p.value()] = it->second;
        fused_tokens[place.name] =
            std::max(fused_tokens[place.name], place.initial_tokens);
        continue;
      }
      representative[place.name] = PlaceId();  // reserve; fill below
    }
    const PlaceId id = out.add_place(place);
    place_map[p.value()] = id;
    if (should_merge(place.name)) {
      representative[place.name] = id;
      fused_tokens[place.name] = place.initial_tokens;
    }
  }
  for (const auto& [name, tokens] : fused_tokens) {
    out.place(representative[name]).initial_tokens = tokens;
  }

  for (TransitionId t : net.transition_ids()) {
    const TransitionId id = out.add_transition(net.transition(t));
    for (const Arc& arc : net.inputs(t)) {
      out.add_input(id, place_map[arc.place.value()], arc.weight);
    }
    for (const Arc& arc : net.outputs(t)) {
      out.add_output(id, place_map[arc.place.value()], arc.weight);
    }
  }
  if (auto status = out.validate(); !status.ok()) {
    return status.error();
  }
  return out;
}

Result<TimePetriNet> glue(const TimePetriNet& a, const TimePetriNet& b,
                          std::string name) {
  EZRT_CHECK(a.validated() && b.validated(), "glue requires validated nets");
  for (TransitionId t : a.transition_ids()) {
    if (b.find_transition(a.transition(t).name).has_value()) {
      return make_error(ErrorCode::kInvalidArgument,
                        "glue: transition '" + a.transition(t).name +
                            "' exists in both nets");
    }
  }

  TimePetriNet out(std::move(name));
  const auto identity = [](const std::string& n) { return n; };
  const std::vector<PlaceId> a_map = copy_into(a, out, identity);

  // b's places: reuse a's when the name matches (interface place, token
  // count fused with max — idempotent for shared resources that both
  // blocks model with one token), fresh otherwise.
  std::vector<PlaceId> b_map(b.place_count());
  for (PlaceId p : b.place_ids()) {
    const Place& place = b.place(p);
    if (const auto shared = a.find_place(place.name)) {
      const PlaceId target = a_map[shared->value()];
      out.place(target).initial_tokens =
          std::max(out.place(target).initial_tokens, place.initial_tokens);
      b_map[p.value()] = target;
    } else {
      b_map[p.value()] = out.add_place(place);
    }
  }
  for (TransitionId t : b.transition_ids()) {
    const TransitionId id = out.add_transition(b.transition(t));
    for (const Arc& arc : b.inputs(t)) {
      out.add_input(id, b_map[arc.place.value()], arc.weight);
    }
    for (const Arc& arc : b.outputs(t)) {
      out.add_output(id, b_map[arc.place.value()], arc.weight);
    }
  }
  if (auto status = out.validate(); !status.ok()) {
    return status.error();
  }
  return out;
}

Result<TimePetriNet> serial(const TimePetriNet& a, const TimePetriNet& b,
                            std::string_view from_place,
                            std::string_view to_place, std::string name) {
  auto merged = disjoint_union(a, b, std::move(name));
  if (!merged.ok()) {
    return merged;
  }
  // The union was validated; extend it through a fresh net (validated
  // nets are immutable).
  TimePetriNet out(merged.value().name());
  std::vector<PlaceId> place_map(merged.value().place_count());
  for (PlaceId p : merged.value().place_ids()) {
    place_map[p.value()] = out.add_place(merged.value().place(p));
  }
  for (TransitionId t : merged.value().transition_ids()) {
    const TransitionId id = out.add_transition(merged.value().transition(t));
    for (const Arc& arc : merged.value().inputs(t)) {
      out.add_input(id, place_map[arc.place.value()], arc.weight);
    }
    for (const Arc& arc : merged.value().outputs(t)) {
      out.add_output(id, place_map[arc.place.value()], arc.weight);
    }
  }
  const auto from = out.find_place(from_place);
  const auto to = out.find_place(to_place);
  if (!from.has_value() || !to.has_value()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "serial: connection places not found");
  }
  const TransitionId link = out.add_transition(
      "tserial_" + std::string(from_place) + "_" + std::string(to_place),
      TimeInterval::exactly(0));
  out.add_input(link, *from);
  out.add_output(link, *to);
  if (auto status = out.validate(); !status.ok()) {
    return status.error();
  }
  return out;
}

}  // namespace ezrt::tpn
