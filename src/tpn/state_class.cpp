#include "tpn/state_class.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "base/assert.hpp"
#include "base/hash.hpp"
#include "tpn/analysis.hpp"

namespace ezrt::tpn {

namespace {

/// Saturating +infinity for DBM entries.
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

[[nodiscard]] std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  if (a >= kInf || b >= kInf) {
    return kInf;
  }
  return a + b;
}

/// Transitions enabled by a marking, in index order.
[[nodiscard]] std::vector<TransitionId> enabled_in(const TimePetriNet& net,
                                                   const Marking& m) {
  std::vector<TransitionId> out;
  for (TransitionId t : net.transition_ids()) {
    bool enabled = true;
    for (const Arc& arc : net.inputs(t)) {
      if (!m.covers(arc.place, arc.weight)) {
        enabled = false;
        break;
      }
    }
    if (enabled) {
      out.push_back(t);
    }
  }
  return out;
}

}  // namespace

std::int64_t& StateClass::bound(std::size_t i, std::size_t j) {
  const std::size_t n = enabled_.size() + 1;
  return dbm_[i * n + j];
}

std::int64_t StateClass::bound(std::size_t i, std::size_t j) const {
  const std::size_t n = enabled_.size() + 1;
  return dbm_[i * n + j];
}

void StateClass::close() {
  const std::size_t n = enabled_.size() + 1;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const std::int64_t via = sat_add(bound(i, k), bound(k, j));
        if (via < bound(i, j)) {
          bound(i, j) = via;
        }
      }
    }
  }
}

bool StateClass::consistent() const {
  const std::size_t n = enabled_.size() + 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (bound(i, i) < 0) {
      return false;
    }
  }
  return true;
}

StateClass StateClass::initial(const TimePetriNet& net) {
  EZRT_CHECK(net.validated(), "StateClass requires a validated net");
  StateClass c;
  c.marking_ = Marking(net.initial_marking());
  c.enabled_ = enabled_in(net, c.marking_);
  const std::size_t n = c.enabled_.size() + 1;
  c.dbm_.assign(n * n, kInf);
  for (std::size_t i = 0; i < n; ++i) {
    c.bound(i, i) = 0;
  }
  for (std::size_t i = 0; i < c.enabled_.size(); ++i) {
    const TimeInterval& interval =
        net.transition(c.enabled_[i]).interval;
    c.bound(i + 1, 0) = interval.bounded()
                            ? static_cast<std::int64_t>(interval.lft())
                            : kInf;
    c.bound(0, i + 1) = -static_cast<std::int64_t>(interval.eft());
  }
  c.close();
  return c;
}

bool StateClass::firable(const TimePetriNet& net, TransitionId t) const {
  (void)net;
  const auto it = std::find(enabled_.begin(), enabled_.end(), t);
  if (it == enabled_.end()) {
    return false;
  }
  const std::size_t ti =
      static_cast<std::size_t>(it - enabled_.begin()) + 1;
  // Adding theta_t - theta_u <= 0 for every u keeps the domain consistent
  // iff no negative cycle appears: with a closed DBM that reduces to
  // bound(u, t) >= 0 for every enabled u.
  for (std::size_t u = 1; u <= enabled_.size(); ++u) {
    if (u != ti && bound(u, ti) < 0) {
      return false;
    }
  }
  return true;
}

std::vector<TransitionId> StateClass::firable_set(
    const TimePetriNet& net) const {
  std::vector<TransitionId> out;
  for (TransitionId t : enabled_) {
    if (firable(net, t)) {
      out.push_back(t);
    }
  }
  return out;
}

StateClass StateClass::fire(const TimePetriNet& net, TransitionId t) const {
  EZRT_CHECK(firable(net, t), "fire: transition '" +
                                  net.transition(t).name +
                                  "' is not firable from this class");
  const std::size_t n_old = enabled_.size() + 1;
  const auto it = std::find(enabled_.begin(), enabled_.end(), t);
  const std::size_t ti =
      static_cast<std::size_t>(it - enabled_.begin()) + 1;

  // Tighten with theta_t <= theta_u and re-close.
  std::vector<std::int64_t> d = dbm_;
  auto at = [&](std::size_t i, std::size_t j) -> std::int64_t& {
    return d[i * n_old + j];
  };
  for (std::size_t u = 1; u < n_old; ++u) {
    if (u != ti) {
      at(ti, u) = std::min(at(ti, u), std::int64_t{0});
    }
  }
  for (std::size_t k = 0; k < n_old; ++k) {
    for (std::size_t i = 0; i < n_old; ++i) {
      for (std::size_t j = 0; j < n_old; ++j) {
        const std::int64_t via = sat_add(at(i, k), at(k, j));
        if (via < at(i, j)) {
          at(i, j) = via;
        }
      }
    }
  }

  // Token flow.
  StateClass next;
  next.marking_ = marking_;
  Marking intermediate = marking_;
  for (const Arc& arc : net.inputs(t)) {
    next.marking_.remove(arc.place, arc.weight);
    intermediate.remove(arc.place, arc.weight);
  }
  for (const Arc& arc : net.outputs(t)) {
    next.marking_.add(arc.place, arc.weight);
  }

  // Persistent = enabled before, still enabled on the intermediate
  // marking (m - pre(t)), and not the fired transition itself.
  next.enabled_ = enabled_in(net, next.marking_);
  std::vector<std::size_t> old_index(next.enabled_.size(), 0);  // 0 = new
  for (std::size_t i = 0; i < next.enabled_.size(); ++i) {
    const TransitionId u = next.enabled_[i];
    if (u == t) {
      continue;  // refired transitions restart fresh
    }
    const auto old_it = std::find(enabled_.begin(), enabled_.end(), u);
    if (old_it == enabled_.end()) {
      continue;
    }
    bool enabled_intermediate = true;
    for (const Arc& arc : net.inputs(u)) {
      if (!intermediate.covers(arc.place, arc.weight)) {
        enabled_intermediate = false;
        break;
      }
    }
    if (enabled_intermediate) {
      old_index[i] =
          static_cast<std::size_t>(old_it - enabled_.begin()) + 1;
    }
  }

  // New domain over theta'_u = theta_u - theta_t.
  const std::size_t n_new = next.enabled_.size() + 1;
  next.dbm_.assign(n_new * n_new, kInf);
  for (std::size_t i = 0; i < n_new; ++i) {
    next.dbm_[i * n_new + i] = 0;
  }
  for (std::size_t i = 0; i < next.enabled_.size(); ++i) {
    if (old_index[i] != 0) {
      // Persistent: bounds against the fired instant.
      next.dbm_[(i + 1) * n_new + 0] = at(old_index[i], ti);
      next.dbm_[0 * n_new + (i + 1)] = at(ti, old_index[i]);
    } else {
      // Newly enabled: fresh static interval.
      const TimeInterval& interval =
          net.transition(next.enabled_[i]).interval;
      next.dbm_[(i + 1) * n_new + 0] =
          interval.bounded() ? static_cast<std::int64_t>(interval.lft())
                             : kInf;
      next.dbm_[0 * n_new + (i + 1)] =
          -static_cast<std::int64_t>(interval.eft());
    }
  }
  // Pairwise bounds between persistent transitions carry over.
  for (std::size_t i = 0; i < next.enabled_.size(); ++i) {
    for (std::size_t j = 0; j < next.enabled_.size(); ++j) {
      if (i != j && old_index[i] != 0 && old_index[j] != 0) {
        next.dbm_[(i + 1) * n_new + (j + 1)] =
            at(old_index[i], old_index[j]);
      }
    }
  }
  next.close();
  EZRT_ASSERT(next.consistent(), "successor class inconsistent");
  return next;
}

bool StateClass::operator==(const StateClass& other) const {
  return marking_ == other.marking_ && enabled_ == other.enabled_ &&
         dbm_ == other.dbm_;
}

std::uint64_t StateClass::hash() const {
  std::uint64_t h = marking_.hash();
  for (TransitionId t : enabled_) {
    h = hash_mix(h, t.value());
  }
  for (std::int64_t v : dbm_) {
    h = hash_mix(h, static_cast<std::uint64_t>(v));
  }
  return h;
}

Time StateClass::earliest(TransitionId t) const {
  const auto it = std::find(enabled_.begin(), enabled_.end(), t);
  EZRT_CHECK(it != enabled_.end(), "transition not enabled in this class");
  const std::size_t ti =
      static_cast<std::size_t>(it - enabled_.begin()) + 1;
  return static_cast<Time>(-bound(0, ti));
}

Time StateClass::latest(TransitionId t) const {
  const auto it = std::find(enabled_.begin(), enabled_.end(), t);
  EZRT_CHECK(it != enabled_.end(), "transition not enabled in this class");
  const std::size_t ti =
      static_cast<std::size_t>(it - enabled_.begin()) + 1;
  const std::int64_t b = bound(ti, 0);
  return b >= kInf ? kTimeInfinity : static_cast<Time>(b);
}

ClassGraphResult build_class_graph(const TimePetriNet& net,
                                   const ClassGraphOptions& options) {
  ClassGraphResult result;
  std::deque<StateClass> frontier;
  // Full-equality buckets keyed by hash: the class graph serves as a
  // correctness oracle, so hash collisions must not merge classes.
  std::unordered_map<std::uint64_t, std::vector<StateClass>> seen;
  std::unordered_map<std::uint64_t, bool> markings_seen;

  auto visit = [&](StateClass&& c) -> bool {
    auto& bucket = seen[c.hash()];
    for (const StateClass& existing : bucket) {
      if (existing == c) {
        return false;
      }
    }
    ++result.classes_explored;
    markings_seen.emplace(c.marking().hash(), true);
    if (is_final_marking(net, c.marking())) {
      result.final_reachable = true;
    }
    const bool miss = has_deadline_miss(net, c.marking());
    if (miss) {
      result.miss_reachable = true;
    }
    bucket.push_back(c);
    if (!miss) {
      frontier.push_back(std::move(c));
    }
    return true;
  };

  (void)visit(StateClass::initial(net));
  while (!frontier.empty()) {
    const StateClass c = std::move(frontier.front());
    frontier.pop_front();
    for (TransitionId t : c.firable_set(net)) {
      ++result.edges;
      if (result.classes_explored >= options.max_classes) {
        result.distinct_markings = markings_seen.size();
        return result;  // bound hit: incomplete
      }
      (void)visit(c.fire(net, t));
    }
  }
  result.complete = true;
  result.distinct_markings = markings_seen.size();
  return result;
}

}  // namespace ezrt::tpn
