#include "tpn/state_class.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "base/assert.hpp"
#include "base/hash.hpp"
#include "tpn/analysis.hpp"
#include "tpn/semantics.hpp"

namespace ezrt::tpn {

namespace {

/// Saturating +infinity for DBM entries.
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

[[nodiscard]] std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  if (a >= kInf || b >= kInf) {
    return kInf;
  }
  return a + b;
}

/// Transitions enabled by a marking, in index order.
[[nodiscard]] std::vector<TransitionId> enabled_in(const TimePetriNet& net,
                                                   const Marking& m) {
  std::vector<TransitionId> out;
  for (TransitionId t : net.transition_ids()) {
    bool enabled = true;
    for (const Arc& arc : net.inputs(t)) {
      if (!m.covers(arc.place, arc.weight)) {
        enabled = false;
        break;
      }
    }
    if (enabled) {
      out.push_back(t);
    }
  }
  return out;
}

}  // namespace

std::int64_t& StateClass::bound(std::size_t i, std::size_t j) {
  const std::size_t n = enabled_.size() + 1;
  return dbm_[i * n + j];
}

std::int64_t StateClass::bound(std::size_t i, std::size_t j) const {
  const std::size_t n = enabled_.size() + 1;
  return dbm_[i * n + j];
}

void StateClass::close() {
  const std::size_t n = enabled_.size() + 1;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const std::int64_t via = sat_add(bound(i, k), bound(k, j));
        if (via < bound(i, j)) {
          bound(i, j) = via;
        }
      }
    }
  }
}

bool StateClass::consistent() const {
  const std::size_t n = enabled_.size() + 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (bound(i, i) < 0) {
      return false;
    }
  }
  return true;
}

StateClass StateClass::initial(const TimePetriNet& net) {
  EZRT_CHECK(net.validated(), "StateClass requires a validated net");
  StateClass c;
  c.marking_ = Marking(net.initial_marking());
  c.enabled_ = enabled_in(net, c.marking_);
  const std::size_t n = c.enabled_.size() + 1;
  c.dbm_.assign(n * n, kInf);
  for (std::size_t i = 0; i < n; ++i) {
    c.bound(i, i) = 0;
  }
  for (std::size_t i = 0; i < c.enabled_.size(); ++i) {
    const TimeInterval& interval =
        net.transition(c.enabled_[i]).interval;
    c.bound(i + 1, 0) = interval.bounded()
                            ? static_cast<std::int64_t>(interval.lft())
                            : kInf;
    c.bound(0, i + 1) = -static_cast<std::int64_t>(interval.eft());
  }
  c.close();
  return c;
}

bool StateClass::firable(const TimePetriNet& net, TransitionId t) const {
  (void)net;
  const auto it = std::find(enabled_.begin(), enabled_.end(), t);
  if (it == enabled_.end()) {
    return false;
  }
  const std::size_t ti =
      static_cast<std::size_t>(it - enabled_.begin()) + 1;
  // Adding theta_t - theta_u <= 0 for every u keeps the domain consistent
  // iff no negative cycle appears: with a closed DBM that reduces to
  // bound(u, t) >= 0 for every enabled u.
  for (std::size_t u = 1; u <= enabled_.size(); ++u) {
    if (u != ti && bound(u, ti) < 0) {
      return false;
    }
  }
  return true;
}

std::vector<TransitionId> StateClass::firable_set(
    const TimePetriNet& net) const {
  std::vector<TransitionId> out;
  for (TransitionId t : enabled_) {
    if (firable(net, t)) {
      out.push_back(t);
    }
  }
  return out;
}

StateClass StateClass::fire(const TimePetriNet& net, TransitionId t) const {
  EZRT_CHECK(firable(net, t), "fire: transition '" +
                                  net.transition(t).name +
                                  "' is not firable from this class");
  const std::size_t n_old = enabled_.size() + 1;
  const auto it = std::find(enabled_.begin(), enabled_.end(), t);
  const std::size_t ti =
      static_cast<std::size_t>(it - enabled_.begin()) + 1;

  // Tighten with theta_t <= theta_u and re-close.
  std::vector<std::int64_t> d = dbm_;
  auto at = [&](std::size_t i, std::size_t j) -> std::int64_t& {
    return d[i * n_old + j];
  };
  for (std::size_t u = 1; u < n_old; ++u) {
    if (u != ti) {
      at(ti, u) = std::min(at(ti, u), std::int64_t{0});
    }
  }
  for (std::size_t k = 0; k < n_old; ++k) {
    for (std::size_t i = 0; i < n_old; ++i) {
      for (std::size_t j = 0; j < n_old; ++j) {
        const std::int64_t via = sat_add(at(i, k), at(k, j));
        if (via < at(i, j)) {
          at(i, j) = via;
        }
      }
    }
  }

  // Token flow.
  StateClass next;
  next.marking_ = marking_;
  Marking intermediate = marking_;
  for (const Arc& arc : net.inputs(t)) {
    next.marking_.remove(arc.place, arc.weight);
    intermediate.remove(arc.place, arc.weight);
  }
  for (const Arc& arc : net.outputs(t)) {
    next.marking_.add(arc.place, arc.weight);
  }

  // Persistent = enabled before, still enabled on the intermediate
  // marking (m - pre(t)), and not the fired transition itself.
  next.enabled_ = enabled_in(net, next.marking_);
  std::vector<std::size_t> old_index(next.enabled_.size(), 0);  // 0 = new
  for (std::size_t i = 0; i < next.enabled_.size(); ++i) {
    const TransitionId u = next.enabled_[i];
    if (u == t) {
      continue;  // refired transitions restart fresh
    }
    const auto old_it = std::find(enabled_.begin(), enabled_.end(), u);
    if (old_it == enabled_.end()) {
      continue;
    }
    bool enabled_intermediate = true;
    for (const Arc& arc : net.inputs(u)) {
      if (!intermediate.covers(arc.place, arc.weight)) {
        enabled_intermediate = false;
        break;
      }
    }
    if (enabled_intermediate) {
      old_index[i] =
          static_cast<std::size_t>(old_it - enabled_.begin()) + 1;
    }
  }

  // New domain over theta'_u = theta_u - theta_t.
  const std::size_t n_new = next.enabled_.size() + 1;
  next.dbm_.assign(n_new * n_new, kInf);
  for (std::size_t i = 0; i < n_new; ++i) {
    next.dbm_[i * n_new + i] = 0;
  }
  for (std::size_t i = 0; i < next.enabled_.size(); ++i) {
    if (old_index[i] != 0) {
      // Persistent: bounds against the fired instant.
      next.dbm_[(i + 1) * n_new + 0] = at(old_index[i], ti);
      next.dbm_[0 * n_new + (i + 1)] = at(ti, old_index[i]);
    } else {
      // Newly enabled: fresh static interval.
      const TimeInterval& interval =
          net.transition(next.enabled_[i]).interval;
      next.dbm_[(i + 1) * n_new + 0] =
          interval.bounded() ? static_cast<std::int64_t>(interval.lft())
                             : kInf;
      next.dbm_[0 * n_new + (i + 1)] =
          -static_cast<std::int64_t>(interval.eft());
    }
  }
  // Pairwise bounds between persistent transitions carry over.
  for (std::size_t i = 0; i < next.enabled_.size(); ++i) {
    for (std::size_t j = 0; j < next.enabled_.size(); ++j) {
      if (i != j && old_index[i] != 0 && old_index[j] != 0) {
        next.dbm_[(i + 1) * n_new + (j + 1)] =
            at(old_index[i], old_index[j]);
      }
    }
  }
  next.close();
  EZRT_ASSERT(next.consistent(), "successor class inconsistent");
  return next;
}

bool StateClass::operator==(const StateClass& other) const {
  return marking_ == other.marking_ && enabled_ == other.enabled_ &&
         dbm_ == other.dbm_;
}

std::uint64_t StateClass::hash() const {
  std::uint64_t h = marking_.hash();
  for (TransitionId t : enabled_) {
    h = hash_mix(h, t.value());
  }
  for (std::int64_t v : dbm_) {
    h = hash_mix(h, static_cast<std::uint64_t>(v));
  }
  return h;
}

Time StateClass::earliest(TransitionId t) const {
  const auto it = std::find(enabled_.begin(), enabled_.end(), t);
  EZRT_CHECK(it != enabled_.end(), "transition not enabled in this class");
  const std::size_t ti =
      static_cast<std::size_t>(it - enabled_.begin()) + 1;
  return static_cast<Time>(-bound(0, ti));
}

Time StateClass::latest(TransitionId t) const {
  const auto it = std::find(enabled_.begin(), enabled_.end(), t);
  EZRT_CHECK(it != enabled_.end(), "transition not enabled in this class");
  const std::size_t ti =
      static_cast<std::size_t>(it - enabled_.begin()) + 1;
  const std::int64_t b = bound(ti, 0);
  return b >= kInf ? kTimeInfinity : static_cast<Time>(b);
}

ClassGraphResult build_class_graph(const TimePetriNet& net,
                                   const ClassGraphOptions& options) {
  ClassGraphResult result;
  std::deque<StateClass> frontier;
  // Full-equality buckets keyed by hash: the class graph serves as a
  // correctness oracle, so hash collisions must not merge classes.
  std::unordered_map<std::uint64_t, std::vector<StateClass>> seen;
  std::unordered_map<std::uint64_t, bool> markings_seen;

  auto visit = [&](StateClass&& c) -> bool {
    auto& bucket = seen[c.hash()];
    for (const StateClass& existing : bucket) {
      if (existing == c) {
        return false;
      }
    }
    ++result.classes_explored;
    markings_seen.emplace(c.marking().hash(), true);
    if (is_final_marking(net, c.marking())) {
      result.final_reachable = true;
    }
    const bool miss = has_deadline_miss(net, c.marking());
    if (miss) {
      result.miss_reachable = true;
    }
    bucket.push_back(c);
    if (!miss) {
      frontier.push_back(std::move(c));
    }
    return true;
  };

  (void)visit(StateClass::initial(net));
  while (!frontier.empty()) {
    const StateClass c = std::move(frontier.front());
    frontier.pop_front();
    for (TransitionId t : c.firable_set(net)) {
      ++result.edges;
      if (result.classes_explored >= options.max_classes) {
        result.distinct_markings = markings_seen.size();
        return result;  // bound hit: incomplete
      }
      (void)visit(c.fire(net, t));
    }
  }
  result.complete = true;
  result.distinct_markings = markings_seen.size();
  return result;
}

// -- StateClassifier ---------------------------------------------------------

StateClassifier::StateClassifier(const TimePetriNet& net) : net_(&net) {
  // Task table size: roles tag nodes with TaskId, so the densest tag + 1
  // bounds the table.
  std::size_t ntasks = 0;
  for (TransitionId t : net.transition_ids()) {
    const Transition& tr = net.transition(t);
    if (tr.task.valid()) {
      ntasks = std::max<std::size_t>(ntasks, tr.task.value() + 1);
    }
  }
  for (PlaceId p : net.place_ids()) {
    const Place& pl = net.place(p);
    if (pl.task.valid()) {
      ntasks = std::max<std::size_t>(ntasks, pl.task.value() + 1);
    }
  }
  tasks_.resize(ntasks);

  for (TransitionId t : net.transition_ids()) {
    const Transition& tr = net.transition(t);
    if (!tr.task.valid()) {
      continue;
    }
    TaskInfo& ti = tasks_[tr.task.value()];
    switch (tr.role) {
      case TransitionRole::kDeadlineHit:
        ti.td = static_cast<std::int32_t>(t.value());
        ti.deadline = tr.interval.lft();
        break;
      case TransitionRole::kCompute:
        ti.tc = static_cast<std::int32_t>(t.value());
        ti.chunk = tr.interval.eft();
        break;
      default:
        break;
    }
  }
  for (PlaceId p : net.place_ids()) {
    const Place& pl = net.place(p);
    if (!pl.task.valid()) {
      continue;
    }
    TaskInfo& ti = tasks_[pl.task.value()];
    const auto pv = static_cast<std::int32_t>(p.value());
    switch (pl.role) {
      case PlaceRole::kWaitRelease:
        ti.wait_release = pv;
        break;
      case PlaceRole::kWaitGrant:
        ti.wait_grant = pv;
        break;
      case PlaceRole::kWaitCompute:
        ti.wait_compute = pv;
        break;
      case PlaceRole::kLocked:
        ti.locked = pv;
        break;
      case PlaceRole::kWaitArrival:
        ti.wait_arrival = pv;
        break;
      default:
        break;
    }
  }

  // Full per-instance demand from arc weights: the release transition
  // emits the instance's chunk budget (wcet chunks for preemptive tasks,
  // one fused chunk otherwise), so comp = (release -> wait_grant weight)
  // * chunk. Processor grouping: the kProcessor place consumed by any of
  // the task's release/grant/compute transitions, densely renumbered.
  std::vector<std::int32_t> proc_index(net.place_count(), -1);
  for (TransitionId t : net.transition_ids()) {
    const Transition& tr = net.transition(t);
    if (!tr.task.valid()) {
      continue;
    }
    TaskInfo& ti = tasks_[tr.task.value()];
    if (tr.role == TransitionRole::kRelease) {
      for (const Arc& arc : net.outputs(t)) {
        if (static_cast<std::int32_t>(arc.place.value()) == ti.wait_grant) {
          ti.comp = static_cast<Time>(arc.weight) * ti.chunk;
        }
      }
    }
    if (tr.role == TransitionRole::kRelease ||
        tr.role == TransitionRole::kGrant ||
        tr.role == TransitionRole::kCompute) {
      for (const Arc& arc : net.inputs(t)) {
        if (net.place(arc.place).role == PlaceRole::kProcessor) {
          std::int32_t& idx = proc_index[arc.place.value()];
          if (idx < 0) {
            idx = static_cast<std::int32_t>(proc_count_++);
          }
          ti.proc = idx;
        }
      }
    }
  }

  for (TaskInfo& ti : tasks_) {
    // A compact-style task fuses release+grant: no wait_grant place, the
    // whole computation is the single chunk.
    if (ti.comp == 0) {
      ti.comp = ti.chunk;
    }
    if (ti.td >= 0 && ti.comp > 0) {
      structured_ = true;
    }
  }

  // Capping rules: non-punctual release windows guarded by a same-task
  // watchdog. The builder invariant "tr enabled implies td enabled with
  // c(td) >= c(tr)" is what makes the cap sound; both transitions being
  // present with their roles is the structural witness.
  for (TransitionId t : net.transition_ids()) {
    const Transition& tr = net.transition(t);
    if (tr.role != TransitionRole::kRelease || !tr.task.valid() ||
        tr.interval.punctual()) {
      continue;
    }
    const TaskInfo& ti = tasks_[tr.task.value()];
    if (ti.td < 0) {
      continue;
    }
    cap_rules_.push_back(
        CapRule{t, TransitionId(static_cast<std::uint32_t>(ti.td)),
                tr.interval.eft()});
  }
}

StateClassifier::CanonicalDigest StateClassifier::canonical_digest(
    const State& s, const Semantics& sem) const {
  CanonicalDigest out{s.digest(), false};
  if (!structured_) {
    return out;
  }
  const bool cached = s.enabled_cache_valid();
  for (const CapRule& rule : cap_rules_) {
    const bool release_on = cached ? s.cached_enabled(rule.release)
                                   : sem.is_enabled(s.marking(), rule.release);
    if (!release_on) {
      continue;
    }
    const bool watchdog_on =
        cached ? s.cached_enabled(rule.watchdog)
               : sem.is_enabled(s.marking(), rule.watchdog);
    if (!watchdog_on) {
      continue;
    }
    const Time c = s.clock(rule.release);
    if (c <= rule.eft) {
      continue;
    }
    // Fold the cap into the XOR-combinable Zobrist digest: remove the
    // concrete clock cell, add the capped one (state.hpp's
    // digest_clock_update, reproduced here because the state is const).
    const std::size_t idx = rule.release.value();
    out.digest.a ^=
        hash_cell(idx, c, kDigestSeedA ^ kDigestClockDomain) ^
        hash_cell(idx, rule.eft, kDigestSeedA ^ kDigestClockDomain);
    out.digest.b ^=
        hash_cell(idx, c, kDigestSeedB ^ kDigestClockDomain) ^
        hash_cell(idx, rule.eft, kDigestSeedB ^ kDigestClockDomain);
    out.capped = true;
  }
  return out;
}

StateClassifier::Eval StateClassifier::evaluate(const State& s,
                                                const Semantics& sem,
                                                Scratch& scratch) const {
  Eval eval;
  if (!structured_) {
    return eval;
  }
  scratch.proc_demand.assign(proc_count_, 0);
  scratch.per_proc.resize(proc_count_);
  for (auto& group : scratch.per_proc) {
    group.clear();
  }
  const Marking& m = s.marking();
  const bool cached = s.enabled_cache_valid();
  for (const TaskInfo& ti : tasks_) {
    if (ti.td < 0 || ti.comp == 0) {
      continue;
    }
    // Unarrived instance budget contributes full demand to the heuristic
    // (every remaining instance must still occupy its processor for comp
    // time units before the final marking), but not to the doom check —
    // its deadline starts only at arrival.
    Time future = 0;
    if (ti.wait_arrival >= 0) {
      future = static_cast<Time>(
                   m[PlaceId(static_cast<std::uint32_t>(ti.wait_arrival))]) *
               ti.comp;
    }
    const TransitionId td(static_cast<std::uint32_t>(ti.td));
    const bool active =
        cached ? s.cached_enabled(td) : sem.is_enabled(m, td);
    Time work = 0;
    if (active) {
      const Time wd_clock = s.clock(td);
      const Time slack = ti.deadline > wd_clock ? ti.deadline - wd_clock : 0;
      if (ti.wait_release >= 0 &&
          m[PlaceId(static_cast<std::uint32_t>(ti.wait_release))] > 0) {
        work = ti.comp;  // not yet released: the full computation remains
      } else {
        std::uint64_t pending = 0;
        if (ti.wait_grant >= 0) {
          pending += m[PlaceId(static_cast<std::uint32_t>(ti.wait_grant))];
        }
        if (ti.locked >= 0) {
          pending += m[PlaceId(static_cast<std::uint32_t>(ti.locked))];
        }
        work = static_cast<Time>(pending) * ti.chunk;
        if (ti.wait_compute >= 0 && ti.tc >= 0 &&
            m[PlaceId(static_cast<std::uint32_t>(ti.wait_compute))] > 0) {
          const TransitionId tc(static_cast<std::uint32_t>(ti.tc));
          const bool running =
              cached ? s.cached_enabled(tc) : sem.is_enabled(m, tc);
          work += ti.chunk - (running ? s.clock(tc) : 0);
        }
      }
      if (work > slack) {
        eval.doomed = true;  // this instance alone cannot make its deadline
        eval.doomed_watchdog = ti.td;
        return eval;
      }
      eval.min_slack = std::min(eval.min_slack, slack);
      if (work > 0 && ti.proc >= 0) {
        scratch.per_proc[static_cast<std::size_t>(ti.proc)].push_back(
            {slack, work, ti.td});
      }
    }
    if (ti.proc >= 0) {
      scratch.proc_demand[static_cast<std::size_t>(ti.proc)] += work + future;
    }
  }
  // Per-processor EDF prefix check: instances sharing a processor must
  // serialize, so sorted by slack horizon, each prefix's summed work must
  // fit within its horizon.
  for (auto& group : scratch.per_proc) {
    if (group.size() < 2) {
      continue;
    }
    std::sort(group.begin(), group.end());
    Time demand = 0;
    for (const auto& [slack, work, td] : group) {
      demand += work;
      if (demand > slack) {
        eval.doomed = true;
        eval.doomed_watchdog = td;
        return eval;
      }
    }
  }
  for (Time demand : scratch.proc_demand) {
    eval.remaining_work = std::max(eval.remaining_work, demand);
  }
  return eval;
}

}  // namespace ezrt::tpn
