#include "tpn/reduce.hpp"

#include <algorithm>
#include <vector>

#include "base/assert.hpp"

namespace ezrt::tpn {

namespace {

/// Mutable working copy of the net used during fusion.
struct WorkTransition {
  Transition data;
  std::vector<Arc> inputs;
  std::vector<Arc> outputs;
  bool dead = false;
};

struct WorkNet {
  std::vector<Place> places;
  std::vector<bool> place_dead;
  std::vector<WorkTransition> transitions;

  [[nodiscard]] std::size_t producers_of(std::size_t p) const {
    std::size_t n = 0;
    for (const WorkTransition& t : transitions) {
      if (t.dead) {
        continue;
      }
      for (const Arc& arc : t.outputs) {
        n += arc.place.value() == p ? 1 : 0;
      }
    }
    return n;
  }

  [[nodiscard]] std::vector<std::size_t> consumers_of(std::size_t p) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < transitions.size(); ++i) {
      if (transitions[i].dead) {
        continue;
      }
      for (const Arc& arc : transitions[i].inputs) {
        if (arc.place.value() == p) {
          out.push_back(i);
          break;
        }
      }
    }
    return out;
  }
};

/// True when firing `t` can never be in conflict: every input place is
/// consumed by t alone.
[[nodiscard]] bool conflict_free(const WorkNet& net,
                                 const WorkTransition& t) {
  for (const Arc& arc : t.inputs) {
    if (net.consumers_of(arc.place.value()).size() != 1) {
      return false;
    }
  }
  return true;
}

/// Attempts one fusion starting at transition index `i`; true on success.
[[nodiscard]] bool try_fuse(WorkNet& net, std::size_t i,
                            const ReductionOptions& options,
                            ReductionReport& report) {
  WorkTransition& t = net.transitions[i];
  if (t.dead || !t.data.interval.is_zero() || t.data.code.has_value()) {
    return false;
  }
  if (!options.fuse_role_transitions &&
      t.data.role != TransitionRole::kGeneric) {
    return false;
  }
  if (t.outputs.size() != 1 || t.outputs[0].weight != 1) {
    return false;
  }
  const std::size_t p = t.outputs[0].place.value();
  if (net.place_dead[p] || net.places[p].initial_tokens != 0) {
    return false;
  }
  if (net.producers_of(p) != 1) {
    return false;
  }
  const std::vector<std::size_t> consumers = net.consumers_of(p);
  if (consumers.size() != 1 || consumers[0] == i) {
    return false;
  }
  WorkTransition& u = net.transitions[consumers[0]];
  // u must take exactly one token from p.
  const auto arc_from_p = std::find_if(
      u.inputs.begin(), u.inputs.end(),
      [&](const Arc& arc) { return arc.place.value() == p; });
  EZRT_ASSERT(arc_from_p != u.inputs.end(), "consumer index inconsistent");
  if (arc_from_p->weight != 1) {
    return false;
  }
  if (!conflict_free(net, t)) {
    return false;
  }
  if (!options.fuse_role_transitions &&
      u.data.role != TransitionRole::kGeneric &&
      t.data.role != TransitionRole::kGeneric) {
    return false;
  }

  // Fuse: u inherits t's inputs in place of its arc from p.
  u.inputs.erase(arc_from_p);
  for (const Arc& arc : t.inputs) {
    auto existing = std::find_if(
        u.inputs.begin(), u.inputs.end(),
        [&](const Arc& a) { return a.place == arc.place; });
    if (existing != u.inputs.end()) {
      existing->weight += arc.weight;
    } else {
      u.inputs.push_back(arc);
    }
  }
  t.dead = true;
  net.place_dead[p] = true;
  ++report.fused_transitions;
  ++report.removed_places;
  return true;
}

}  // namespace

Result<TimePetriNet> reduce_series(const TimePetriNet& net,
                                   ReductionReport* report,
                                   const ReductionOptions& options) {
  EZRT_CHECK(net.validated(), "reduce_series requires a validated net");

  WorkNet work;
  work.places.reserve(net.place_count());
  for (PlaceId p : net.place_ids()) {
    work.places.push_back(net.place(p));
  }
  work.place_dead.assign(net.place_count(), false);
  for (TransitionId t : net.transition_ids()) {
    WorkTransition wt;
    wt.data = net.transition(t);
    wt.inputs = net.inputs(t);
    wt.outputs = net.outputs(t);
    work.transitions.push_back(std::move(wt));
  }

  ReductionReport local;
  bool changed = true;
  while (changed && local.passes < options.max_passes) {
    changed = false;
    ++local.passes;
    for (std::size_t i = 0; i < work.transitions.size(); ++i) {
      changed |= try_fuse(work, i, options, local);
    }
  }

  // Rebuild a fresh net with compacted IDs.
  TimePetriNet reduced(net.name());
  std::vector<PlaceId> place_map(work.places.size());
  for (std::size_t p = 0; p < work.places.size(); ++p) {
    if (!work.place_dead[p]) {
      place_map[p] = reduced.add_place(work.places[p]);
    }
  }
  for (const WorkTransition& wt : work.transitions) {
    if (wt.dead) {
      continue;
    }
    const TransitionId id = reduced.add_transition(wt.data);
    for (const Arc& arc : wt.inputs) {
      reduced.add_input(id, place_map[arc.place.value()], arc.weight);
    }
    for (const Arc& arc : wt.outputs) {
      reduced.add_output(id, place_map[arc.place.value()], arc.weight);
    }
  }
  if (auto status = reduced.validate(); !status.ok()) {
    return status.error();
  }
  if (report != nullptr) {
    *report = local;
  }
  return reduced;
}

}  // namespace ezrt::tpn
