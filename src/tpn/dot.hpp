// Graphviz (DOT) export of time Petri nets.
//
// The original tool renders its models graphically (the Eclipse editor);
// this reproduction exports DOT so any Graphviz viewer can draw the
// composed net: places as circles (resource places shaded, miss places
// colored), transitions as bars labeled with their firing intervals, arc
// weights on edges. Optionally overlays a marking (token counts).
#pragma once

#include <optional>
#include <string>

#include "tpn/marking.hpp"
#include "tpn/net.hpp"

namespace ezrt::tpn {

struct DotOptions {
  /// Render this marking's token counts instead of the initial marking.
  std::optional<Marking> marking;
  /// Left-to-right layout (follows the task pipelines); false = top-down.
  bool left_to_right = true;
  /// Include the priority on transition labels.
  bool show_priorities = false;
};

/// Serializes the net as a DOT digraph.
[[nodiscard]] std::string write_dot(const TimePetriNet& net,
                                    const DotOptions& options = {});

}  // namespace ezrt::tpn
