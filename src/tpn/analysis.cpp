#include "tpn/analysis.hpp"

#include <sstream>

namespace ezrt::tpn {

NetStats stats(const TimePetriNet& net) {
  NetStats s;
  s.places = net.place_count();
  s.transitions = net.transition_count();
  for (TransitionId t : net.transition_ids()) {
    s.arcs += net.inputs(t).size() + net.outputs(t).size();
  }
  for (PlaceId p : net.place_ids()) {
    s.initial_tokens += net.place(p).initial_tokens;
  }
  return s;
}

bool structurally_conflict_free(const TimePetriNet& net, TransitionId t) {
  if (net.validated()) {
    return net.conflict_free(t);  // cached by validate()
  }
  for (const Arc& arc : net.inputs(t)) {
    if (net.consumers(arc.place).size() > 1) {
      return false;
    }
  }
  return true;
}

bool has_deadline_miss(const TimePetriNet& net, const Marking& m) {
  return missed_task(net, m).valid();
}

TaskId missed_task(const TimePetriNet& net, const Marking& m) {
  for (PlaceId p : net.place_ids()) {
    const Place& place = net.place(p);
    if ((place.role == PlaceRole::kMissPending ||
         place.role == PlaceRole::kMissed) &&
        m[p] > 0) {
      return place.task;
    }
  }
  return TaskId();
}

bool is_final_marking(const TimePetriNet& net, const Marking& m) {
  for (PlaceId p : net.place_ids()) {
    if (net.place(p).role == PlaceRole::kEnd && m[p] > 0) {
      return true;
    }
  }
  return false;
}

std::string describe_marking(const TimePetriNet& net, const Marking& m) {
  std::ostringstream os;
  bool first = true;
  for (PlaceId p : net.place_ids()) {
    if (m[p] == 0) {
      continue;
    }
    if (!first) {
      os << ", ";
    }
    first = false;
    os << net.place(p).name;
    if (m[p] > 1) {
      os << "(" << m[p] << ")";
    }
  }
  if (first) {
    os << "(empty)";
  }
  return os.str();
}

}  // namespace ezrt::tpn
