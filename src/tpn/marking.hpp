// Markings of a time Petri net.
//
// A marking m_i is a vector in N^{|P|} (paper §3.1). This wrapper adds the
// token-arithmetic used by the firing rule and a cached hash for the
// scheduler's visited set.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/assert.hpp"
#include "base/hash.hpp"
#include "base/ids.hpp"

namespace ezrt::tpn {

class Marking {
 public:
  Marking() = default;
  explicit Marking(std::vector<std::uint32_t> tokens)
      : tokens_(std::move(tokens)) {}

  [[nodiscard]] std::size_t size() const { return tokens_.size(); }

  [[nodiscard]] std::uint32_t operator[](PlaceId p) const {
    return tokens_[p.value()];
  }

  [[nodiscard]] bool covers(PlaceId p, std::uint32_t weight) const {
    return tokens_[p.value()] >= weight;
  }

  void remove(PlaceId p, std::uint32_t weight) {
    EZRT_ASSERT(tokens_[p.value()] >= weight,
                "firing would drive a marking negative");
    tokens_[p.value()] -= weight;
  }

  void add(PlaceId p, std::uint32_t weight) { tokens_[p.value()] += weight; }

  [[nodiscard]] std::span<const std::uint32_t> tokens() const {
    return tokens_;
  }

  [[nodiscard]] std::uint64_t hash() const {
    return hash_span<std::uint32_t>(tokens_);
  }

  friend bool operator==(const Marking&, const Marking&) = default;

 private:
  std::vector<std::uint32_t> tokens_;
};

}  // namespace ezrt::tpn
