// Structural and role-based analyses over a TPN.
//
// These are read-only helpers shared by the scheduler (conflict detection
// for partial-order reduction, undesirable-state detection for pruning) and
// the reporting layer (net statistics).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tpn/marking.hpp"
#include "tpn/net.hpp"

namespace ezrt::tpn {

/// Aggregate size of a net — used by the block-cost benchmarks.
struct NetStats {
  std::size_t places = 0;
  std::size_t transitions = 0;
  std::size_t arcs = 0;
  std::size_t initial_tokens = 0;
};

[[nodiscard]] NetStats stats(const TimePetriNet& net);

/// True if no other transition shares an input place with t, i.e. firing t
/// can never disable anything else. Such transitions are safe candidates
/// for partial-order reduction.
[[nodiscard]] bool structurally_conflict_free(const TimePetriNet& net,
                                              TransitionId t);

/// True if the marking covers any miss-pending or missed place — the
/// "undesirable state" of the deadline-checking block (§3.3.1d); the
/// scheduler prunes these branches immediately.
[[nodiscard]] bool has_deadline_miss(const TimePetriNet& net,
                                     const Marking& m);

/// The task whose deadline-checking block is marked, for diagnostics.
/// Returns an invalid TaskId when no miss is marked.
[[nodiscard]] TaskId missed_task(const TimePetriNet& net, const Marking& m);

/// True if the marking is a goal marking M_F: the join block's end place
/// carries a token (§3.3.1b — m(pend) = 1 signals a feasible schedule).
[[nodiscard]] bool is_final_marking(const TimePetriNet& net,
                                    const Marking& m);

/// Human-readable marking dump (only non-empty places), for diagnostics.
[[nodiscard]] std::string describe_marking(const TimePetriNet& net,
                                           const Marking& m);

}  // namespace ezrt::tpn
