// Dense-time state-class graph construction (Berthomieu & Diaz).
//
// The paper adopts a time-discrete semantics; the classic TPN analyzers
// it is related to (TINA, Romeo) work in *dense* time using state
// classes: a class C = (m, D) pairs a marking with a firing domain D — a
// difference-bound polyhedron over the enabled transitions' firing times.
// This module implements the standard class-graph successor computation:
//
//   fire(C, t):  t must be firable from C, i.e. adding the constraints
//   theta_t <= theta_u (for every enabled u) keeps D consistent; the new
//   domain shifts remaining clocks by theta_t, projects t out, and adds
//   fresh [EFT, LFT] intervals for newly enabled transitions.
//
// The atom constraints are kept in normalized DBM form (closure by
// Floyd-Warshall), so class equality is canonical and the reachable
// class graph is finite for bounded nets.
//
// Role here: an independent, dense-time engine to cross-validate the
// discrete-clock search — for the integer-interval nets ezRealtime
// builds, a marking is dense-time reachable iff it is reachable in the
// discrete semantics, and the class graph's firable sets subsume the
// discrete fireable sets (validated by tests and usable as an oracle).
#pragma once

#include <cstdint>
#include <vector>

#include "base/result.hpp"
#include "tpn/marking.hpp"
#include "tpn/net.hpp"
#include "tpn/state.hpp"

namespace ezrt::tpn {

/// A state class: marking + firing-domain DBM over enabled transitions.
class StateClass {
 public:
  /// The initial class C0 = (m0, prod of static intervals).
  [[nodiscard]] static StateClass initial(const TimePetriNet& net);

  [[nodiscard]] const Marking& marking() const { return marking_; }

  /// Enabled transitions (the DBM's dimensions, in index order).
  [[nodiscard]] const std::vector<TransitionId>& enabled() const {
    return enabled_;
  }

  /// True if t can fire first from this class (domain stays consistent
  /// under theta_t <= theta_u for all enabled u).
  [[nodiscard]] bool firable(const TimePetriNet& net, TransitionId t) const;

  /// All firable transitions.
  [[nodiscard]] std::vector<TransitionId> firable_set(
      const TimePetriNet& net) const;

  /// Successor class after firing t (checked precondition: firable).
  [[nodiscard]] StateClass fire(const TimePetriNet& net,
                                TransitionId t) const;

  /// Canonical equality (markings and normalized domains).
  [[nodiscard]] bool operator==(const StateClass& other) const;

  /// Hash over marking and normalized DBM entries.
  [[nodiscard]] std::uint64_t hash() const;

  /// Earliest global firing time lower bound of transition t within this
  /// class (for diagnostics/tests): min theta_t admitted by the domain.
  [[nodiscard]] Time earliest(TransitionId t) const;
  /// Latest theta_t admitted (kTimeInfinity when unbounded).
  [[nodiscard]] Time latest(TransitionId t) const;

 private:
  StateClass() = default;

  /// DBM entry: bound_[i][j] >= theta_i - theta_j, with index 0 reserved
  /// for the reference "zero" variable; entries use a saturating
  /// +infinity. Dimensions: enabled_.size() + 1.
  [[nodiscard]] std::int64_t& bound(std::size_t i, std::size_t j);
  [[nodiscard]] std::int64_t bound(std::size_t i, std::size_t j) const;
  void close();  ///< Floyd-Warshall normalization
  [[nodiscard]] bool consistent() const;

  Marking marking_;
  std::vector<TransitionId> enabled_;
  std::vector<std::int64_t> dbm_;  ///< (n+1)^2 row-major
};

struct ClassGraphOptions {
  std::uint64_t max_classes = 100'000;
};

struct ClassGraphResult {
  std::uint64_t classes_explored = 0;
  std::uint64_t edges = 0;
  bool complete = false;
  bool final_reachable = false;
  bool miss_reachable = false;
  /// Distinct markings seen (≥ classes with equal markings collapse).
  std::uint64_t distinct_markings = 0;
};

/// Breadth-first construction of the reachable class graph.
[[nodiscard]] ClassGraphResult build_class_graph(
    const TimePetriNet& net, const ClassGraphOptions& options = {});

// -- Discrete state-class abstraction (docs/search.md) -----------------------
//
// Where the dense-time classes above are an independent cross-validation
// engine, StateClassifier serves the discrete search directly: it collapses
// concrete (marking, clock-vector) states into classes that agree on goal
// reachability, using the structural invariants of builder-produced nets
// (node roles, docs/search.md §3 gives the full soundness arguments):
//
//   * release-clock capping — a release transition tr with static window
//     [r, d - c] has an unobservable clock beyond its EFT while the task's
//     deadline watchdog td is co-enabled: branches that release later than
//     DUB(td) - c are doomed either way (the watchdog forces a miss before
//     the instance can accumulate c computation), and on surviving branches
//     the window upper bound never binds because c(td) >= c(tr) always
//     holds. The visited set can therefore key on a canonical digest with
//     c(tr) capped to EFT(tr);
//
//   * doom certificate — for each active instance (td enabled), slack
//     D = deadline - c(td) against the remaining-work lower bound W
//     (unreleased: the full computation time; otherwise pending chunks plus
//     the running chunk's residue). W > D proves every continuation marks a
//     miss place, as does the per-processor EDF check: active instances on
//     one processor serialize, so sorted by slack, any prefix whose summed
//     W exceeds its slack horizon is unschedulable.
//
// On nets without role metadata (hand-built tests, imported PNML) the
// classifier degrades to the identity: canonical_digest() returns the
// concrete digest and evaluate() never dooms.
class Semantics;

class StateClassifier {
 public:
  /// The net must be validated and outlive the classifier. Construction
  /// precomputes the per-task tables (watchdog, compute chunk, remaining
  /// demand, processor grouping) from roles and arc weights alone.
  explicit StateClassifier(const TimePetriNet& net);

  /// False when the net carries no task/deadline role metadata at all; the
  /// abstraction is then the identity and callers may skip it entirely.
  [[nodiscard]] bool structured() const { return structured_; }

  struct CanonicalDigest {
    StateDigest digest;
    /// True when capping changed the digest (the state is a non-canonical
    /// member of its class); feeds SearchStats::classes_merged.
    bool capped = false;
  };

  /// Class-representative digest of `s`: the concrete Zobrist digest with
  /// every cappable release clock folded down to its EFT.
  [[nodiscard]] CanonicalDigest canonical_digest(const State& s,
                                                 const Semantics& sem) const;

  struct Eval {
    /// No continuation of the state can avoid marking a miss place.
    bool doomed = false;
    /// Watchdog transition of the instance whose slack certificate fired
    /// (-1 when not doomed); lets callers attribute the doom to a task —
    /// for the EDF-prefix certificate, the last instance of the failing
    /// prefix (the one whose horizon the summed demand overran).
    std::int32_t doomed_watchdog = -1;
    /// Admissible lower bound on further elapsed time before the final
    /// marking is reachable: the largest per-processor remaining
    /// computation demand (active instances plus unarrived budget).
    Time remaining_work = 0;
    /// Tightest slack among active instances (kTimeInfinity when idle);
    /// the guided engines break f-ties toward urgency with this.
    Time min_slack = kTimeInfinity;
  };

  /// Per-call scratch buffers, owned by the caller (one per worker); keeps
  /// evaluate() allocation-free on the admission hot path.
  struct Scratch {
    std::vector<Time> proc_demand;
    /// (slack, work, watchdog transition) per active instance, grouped by
    /// processor index. The watchdog rides along purely for attribution;
    /// it is the last sort key, so ordering stays slack-major.
    std::vector<std::vector<std::tuple<Time, Time, std::int32_t>>> per_proc;
  };

  /// Doom certificate + heuristic in one pass over the per-task tables.
  [[nodiscard]] Eval evaluate(const State& s, const Semantics& sem,
                              Scratch& scratch) const;

 private:
  struct TaskInfo {
    std::int32_t td = -1;        ///< deadline watchdog transition
    Time deadline = 0;           ///< static LFT of td
    Time comp = 0;               ///< full per-instance computation demand
    Time chunk = 0;              ///< one compute firing's duration
    std::int32_t tc = -1;        ///< compute transition
    std::int32_t proc = -1;      ///< dense processor-group index
    std::int32_t wait_release = -1;
    std::int32_t wait_grant = -1;
    std::int32_t wait_compute = -1;
    std::int32_t locked = -1;
    std::int32_t wait_arrival = -1;
  };

  /// (release transition, watchdog transition, EFT) capping rules.
  struct CapRule {
    TransitionId release;
    TransitionId watchdog;
    Time eft;
  };

  const TimePetriNet* net_;
  bool structured_ = false;
  std::vector<TaskInfo> tasks_;
  std::vector<CapRule> cap_rules_;
  std::size_t proc_count_ = 0;
};

}  // namespace ezrt::tpn
