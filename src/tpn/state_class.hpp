// Dense-time state-class graph construction (Berthomieu & Diaz).
//
// The paper adopts a time-discrete semantics; the classic TPN analyzers
// it is related to (TINA, Romeo) work in *dense* time using state
// classes: a class C = (m, D) pairs a marking with a firing domain D — a
// difference-bound polyhedron over the enabled transitions' firing times.
// This module implements the standard class-graph successor computation:
//
//   fire(C, t):  t must be firable from C, i.e. adding the constraints
//   theta_t <= theta_u (for every enabled u) keeps D consistent; the new
//   domain shifts remaining clocks by theta_t, projects t out, and adds
//   fresh [EFT, LFT] intervals for newly enabled transitions.
//
// The atom constraints are kept in normalized DBM form (closure by
// Floyd-Warshall), so class equality is canonical and the reachable
// class graph is finite for bounded nets.
//
// Role here: an independent, dense-time engine to cross-validate the
// discrete-clock search — for the integer-interval nets ezRealtime
// builds, a marking is dense-time reachable iff it is reachable in the
// discrete semantics, and the class graph's firable sets subsume the
// discrete fireable sets (validated by tests and usable as an oracle).
#pragma once

#include <cstdint>
#include <vector>

#include "base/result.hpp"
#include "tpn/marking.hpp"
#include "tpn/net.hpp"

namespace ezrt::tpn {

/// A state class: marking + firing-domain DBM over enabled transitions.
class StateClass {
 public:
  /// The initial class C0 = (m0, prod of static intervals).
  [[nodiscard]] static StateClass initial(const TimePetriNet& net);

  [[nodiscard]] const Marking& marking() const { return marking_; }

  /// Enabled transitions (the DBM's dimensions, in index order).
  [[nodiscard]] const std::vector<TransitionId>& enabled() const {
    return enabled_;
  }

  /// True if t can fire first from this class (domain stays consistent
  /// under theta_t <= theta_u for all enabled u).
  [[nodiscard]] bool firable(const TimePetriNet& net, TransitionId t) const;

  /// All firable transitions.
  [[nodiscard]] std::vector<TransitionId> firable_set(
      const TimePetriNet& net) const;

  /// Successor class after firing t (checked precondition: firable).
  [[nodiscard]] StateClass fire(const TimePetriNet& net,
                                TransitionId t) const;

  /// Canonical equality (markings and normalized domains).
  [[nodiscard]] bool operator==(const StateClass& other) const;

  /// Hash over marking and normalized DBM entries.
  [[nodiscard]] std::uint64_t hash() const;

  /// Earliest global firing time lower bound of transition t within this
  /// class (for diagnostics/tests): min theta_t admitted by the domain.
  [[nodiscard]] Time earliest(TransitionId t) const;
  /// Latest theta_t admitted (kTimeInfinity when unbounded).
  [[nodiscard]] Time latest(TransitionId t) const;

 private:
  StateClass() = default;

  /// DBM entry: bound_[i][j] >= theta_i - theta_j, with index 0 reserved
  /// for the reference "zero" variable; entries use a saturating
  /// +infinity. Dimensions: enabled_.size() + 1.
  [[nodiscard]] std::int64_t& bound(std::size_t i, std::size_t j);
  [[nodiscard]] std::int64_t bound(std::size_t i, std::size_t j) const;
  void close();  ///< Floyd-Warshall normalization
  [[nodiscard]] bool consistent() const;

  Marking marking_;
  std::vector<TransitionId> enabled_;
  std::vector<std::int64_t> dbm_;  ///< (n+1)^2 row-major
};

struct ClassGraphOptions {
  std::uint64_t max_classes = 100'000;
};

struct ClassGraphResult {
  std::uint64_t classes_explored = 0;
  std::uint64_t edges = 0;
  bool complete = false;
  bool final_reachable = false;
  bool miss_reachable = false;
  /// Distinct markings seen (≥ classes with equal markings collapse).
  std::uint64_t distinct_markings = 0;
};

/// Breadth-first construction of the reachable class graph.
[[nodiscard]] ClassGraphResult build_class_graph(
    const TimePetriNet& net, const ClassGraphOptions& options = {});

}  // namespace ezrt::tpn
